// Invariant pack for the pluggable scheduling policies (DESIGN.md §15):
// bucket math, the directed sche_assign reservation, the static cost
// table, bitwise identity of the spectra across all three policies on the
// sync / pipelined / service paths, the tasks_total == histogram-count
// contract, randomized seeded task streams (exactly-once, no lost tasks
// under steal races, quarantined devices never assigned), and a TSan
// regression pinning the atomic max_queue_length autotuner fix.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "apec/calculator.h"
#include "core/hybrid.h"
#include "core/sched_policy.h"
#include "core/scheduler.h"
#include "core/shm.h"
#include "core/task.h"
#include "service/service.h"

namespace {

using namespace hspec;
using namespace hspec::core;

// ------------------------------------------------- latency bucket math

TEST(SchedLatencyBuckets, EdgeCasesAndMonotonicity) {
  // Sub-ns / non-positive readings land in bucket 0 (clock granularity).
  EXPECT_EQ(sched_latency_bucket(0), 0);
  EXPECT_EQ(sched_latency_bucket(-5), 0);
  EXPECT_EQ(sched_latency_bucket(1), 0);
  // Bucket index never decreases as the latency grows, and every bucket
  // stays in range even for absurd readings.
  int prev = 0;
  for (std::int64_t ns = 1; ns < (std::int64_t{1} << 40); ns *= 3) {
    const int b = sched_latency_bucket(ns);
    EXPECT_GE(b, prev) << "ns=" << ns;
    EXPECT_LT(b, kSchedLatencyBuckets);
    prev = b;
  }
  EXPECT_EQ(sched_latency_bucket(std::int64_t{1} << 62),
            kSchedLatencyBuckets - 1);
}

TEST(SchedLatencyBuckets, QuarterOctaveLayout) {
  // Bucket 4*o + s covers [(1 + s/4) * 2^o, (1 + (s+1)/4) * 2^o).
  EXPECT_EQ(sched_latency_bucket(16), 16);   // o=4, s=0
  EXPECT_EQ(sched_latency_bucket(19), 16);   // still below 20
  EXPECT_EQ(sched_latency_bucket(20), 17);   // o=4, s=1
  EXPECT_EQ(sched_latency_bucket(31), 19);   // top of octave 4
  EXPECT_EQ(sched_latency_bucket(32), 20);   // o=5, s=0
  EXPECT_DOUBLE_EQ(sched_latency_bucket_upper_ns(16), 20.0);
  EXPECT_DOUBLE_EQ(sched_latency_bucket_upper_ns(19), 32.0);
  // Upper bounds are strictly increasing; a sample always sits below its
  // bucket's bound.
  for (int b = 1; b < kSchedLatencyBuckets; ++b)
    EXPECT_GT(sched_latency_bucket_upper_ns(b),
              sched_latency_bucket_upper_ns(b - 1));
}

TEST(SchedulingStats, MeanAndQuantilesFromHistogram) {
  SchedulingStats s;
  EXPECT_DOUBLE_EQ(s.mean_ns(), 0.0);
  EXPECT_DOUBLE_EQ(s.median_ns(), 0.0);
  // 10 samples in bucket 16 (upper 20 ns), 30 in bucket 20 (upper 40 ns).
  s.hist[16] = 10;
  s.hist[20] = 30;
  s.decisions = 40;
  s.latency_ns_total = 10 * 18 + 30 * 33;
  EXPECT_DOUBLE_EQ(s.mean_ns(), (10.0 * 18 + 30.0 * 33) / 40.0);
  // Linear interpolation inside the crossing bucket: bucket 16 spans
  // [16, 20) ns, bucket 20 spans [32, 40) ns.
  EXPECT_DOUBLE_EQ(s.quantile_ns(0.1), 16.0 + 4.0 * (4.0 / 10.0));
  EXPECT_DOUBLE_EQ(s.median_ns(), 32.0 + 8.0 * (10.0 / 30.0));
  EXPECT_DOUBLE_EQ(s.quantile_ns(1.0), 40.0);  // frac 1.0: the upper bound
}

// ------------------------------------------------------- sche_assign

TEST(ScheAssign, DirectedReservationSemantics) {
  ShmRegion region = ShmRegion::create_inprocess(2, 2);
  TaskScheduler sched(region.view());
  // Out of range: no verdict, no counters.
  EXPECT_EQ(sched.sche_assign(-1), -1);
  EXPECT_EQ(sched.sche_assign(2), -1);
  EXPECT_EQ(sched.stats().gpu_allocations, 0);
  // Success takes exactly one slot on exactly the requested device.
  EXPECT_EQ(sched.sche_assign(1), 1);
  EXPECT_EQ(sched.load(0), 0);
  EXPECT_EQ(sched.load(1), 1);
  EXPECT_EQ(sched.history(1), 1);
  EXPECT_EQ(sched.stats().gpu_allocations, 1);
  // The cap bounds the directed path exactly as it bounds sche_alloc.
  EXPECT_EQ(sched.sche_assign(1), 1);
  EXPECT_EQ(sched.sche_assign(1), -1);
  EXPECT_EQ(sched.load(1), 2);
  sched.sche_free(1);
  sched.sche_free(1);
}

TEST(ScheAssign, QuarantinedDeviceRefused) {
  ShmRegion region = ShmRegion::create_inprocess(2, 4);
  TaskScheduler sched(region.view());
  sched.report_task_fault(0, /*fatal=*/true);
  EXPECT_EQ(sched.health(0), DeviceHealth::quarantined);
  EXPECT_EQ(sched.sche_assign(0), -1);
  EXPECT_EQ(sched.history(0), 0);
  EXPECT_EQ(sched.sche_assign(1), 1);
  sched.sche_free(1);
}

// ------------------------------------------------------ shared fixture

class SchedPolicyTest : public ::testing::Test {
 protected:
  SchedPolicyTest()
      : db_(small_db()), grid_(apec::EnergyGrid::wavelength(5.0, 40.0, 48)),
        calc_(db_, grid_, kernel_options()) {}

  static atomic::DatabaseConfig small_db() {
    atomic::DatabaseConfig cfg;
    cfg.max_z = 8;
    cfg.levels = {2, true};
    return cfg;
  }
  static apec::CalcOptions kernel_options() {
    apec::CalcOptions opt;
    opt.integration.adaptive = false;  // same math on both paths
    return opt;
  }

  std::vector<SpectralTask> tasks_for(TaskGranularity g) const {
    const apec::GridPoint pt{0.5, 1.0, 0.0, 0};
    const auto pops = apec::solve_populations(db_, pt);
    return make_tasks(calc_, pt, pops, g);
  }

  atomic::AtomicDatabase db_;
  apec::EnergyGrid grid_;
  apec::SpectrumCalculator calc_;
};

constexpr SchedulingPolicyKind kAllPolicies[] = {
    SchedulingPolicyKind::dynamic_min_load,
    SchedulingPolicyKind::static_cost_partition,
    SchedulingPolicyKind::hybrid_static_steal,
};

TEST_F(SchedPolicyTest, StaticTableCoversEveryTaskAndIsDeterministic) {
  for (TaskGranularity g : {TaskGranularity::ion, TaskGranularity::level}) {
    BatchContext ctx;
    ctx.calc = &calc_;
    ctx.granularity = g;
    ctx.device_count = 3;
    auto policy =
        SchedulingPolicy::make(SchedulingPolicyKind::static_cost_partition);
    policy->begin_batch(ctx);

    ShmRegion region = ShmRegion::create_inprocess(3, 1024);
    TaskScheduler sched(region.view());
    const auto tasks = tasks_for(g);
    ASSERT_FALSE(tasks.empty());
    std::vector<int> first;
    for (const auto& t : tasks) {
      const int d = policy->assign(t, sched);
      ASSERT_GE(d, 0) << "empty queues must never overflow to the CPU";
      ASSERT_LT(d, 3);
      first.push_back(d);
      sched.sche_free(d);
    }
    // Rebuilding the table must reproduce the same partition bit-for-bit
    // (LPT with deterministic tie-breaks), and so must a second policy.
    auto policy2 =
        SchedulingPolicy::make(SchedulingPolicyKind::static_cost_partition);
    policy2->begin_batch(ctx);
    policy->begin_batch(ctx);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const int d = policy->assign(tasks[i], sched);
      EXPECT_EQ(d, first[i]);
      sched.sche_free(d);
      const int d2 = policy2->assign(tasks[i], sched);
      EXPECT_EQ(d2, first[i]);
      sched.sche_free(d2);
    }
    // Every device receives work: the LPT pack spreads the database.
    for (int d = 0; d < 3; ++d)
      EXPECT_TRUE(std::count(first.begin(), first.end(), d) > 0)
          << "device " << d << " got no tasks under " << to_string(g);
  }
}

TEST_F(SchedPolicyTest, NoDevicesEveryPolicyFallsBackToCpu) {
  BatchContext ctx;
  ctx.calc = &calc_;
  ctx.device_count = 0;
  ShmRegion region = ShmRegion::create_inprocess(0, 4);
  const auto tasks = tasks_for(TaskGranularity::ion);
  for (const auto kind : kAllPolicies) {
    TaskScheduler sched(region.view());
    auto policy = SchedulingPolicy::make(kind);
    policy->begin_batch(ctx);
    for (const auto& t : tasks) EXPECT_EQ(timed_assign(*policy, t, sched), -1);
    // Every verdict is still counted (and clocked) exactly once.
    EXPECT_EQ(sched.stats().cpu_fallbacks,
              static_cast<std::int64_t>(tasks.size()));
    EXPECT_EQ(sched.stats().gpu_allocations, 0);
  }
  const SchedulingStats stats = read_scheduling_stats(
      region.view(), SchedulingPolicyKind::dynamic_min_load);
  EXPECT_EQ(stats.decisions,
            static_cast<std::int64_t>(3 * tasks_for(TaskGranularity::ion).size()));
}

TEST_F(SchedPolicyTest, QuarantinedDeviceNeverAssignedByAnyPolicy) {
  const auto tasks = tasks_for(TaskGranularity::ion);
  for (const auto kind : kAllPolicies) {
    BatchContext ctx;
    ctx.calc = &calc_;
    ctx.device_count = 2;
    ShmRegion region = ShmRegion::create_inprocess(2, 1024);
    TaskScheduler sched(region.view());
    sched.report_task_fault(0, /*fatal=*/true);
    auto policy = SchedulingPolicy::make(kind);
    policy->begin_batch(ctx);
    for (const auto& t : tasks) {
      const int d = policy->assign(t, sched);
      EXPECT_NE(d, 0) << to_string(kind);
      if (d >= 0) sched.sche_free(d);
    }
    EXPECT_EQ(sched.history(0), 0) << to_string(kind);
  }
}

// ------------------------------------- bitwise identity across policies

struct IdentityCase {
  ExecutionMode mode;
  TaskGranularity granularity;
  int ranks;
  int devices;
};

class PolicyIdentity : public SchedPolicyTest,
                       public ::testing::WithParamInterface<IdentityCase> {};

TEST_P(PolicyIdentity, AllPoliciesProduceBitwiseIdenticalSpectra) {
  const auto [mode, granularity, ranks, devices] = GetParam();
  const std::vector<apec::GridPoint> points{{0.3, 1.0, 0.0, 0},
                                            {0.8, 1.0, 0.0, 1}};
  HybridConfig cfg;
  cfg.ranks = ranks;
  cfg.devices = devices;
  cfg.granularity = granularity;
  cfg.mode = mode;
  // Deep queues: no task ever overflows to QAGS, so the GPU/CPU split —
  // the only bit-visible scheduling effect — is identical across policies.
  cfg.max_queue_length = 32;

  std::vector<HybridResult> results;
  for (const auto kind : kAllPolicies) {
    HybridConfig c = cfg;
    c.scheduling_policy = kind;
    results.push_back(HybridDriver(calc_, c).run(points));
    const HybridResult& res = results.back();
    // The latency histogram clocks every task exactly once.
    EXPECT_EQ(res.sched.policy, kind);
    EXPECT_EQ(res.sched.decisions,
              static_cast<std::int64_t>(res.tasks_total));
    EXPECT_EQ(res.scheduling.gpu_allocations + res.scheduling.cpu_fallbacks,
              static_cast<std::int64_t>(res.tasks_total));
    EXPECT_GT(res.sched.latency_ns_total, 0);
    EXPECT_GT(res.sched.median_ns(), 0.0);
    // With deep queues every task lands on a GPU.
    EXPECT_EQ(res.scheduling.cpu_fallbacks, 0) << to_string(kind);
  }
  for (std::size_t r = 1; r < results.size(); ++r) {
    ASSERT_EQ(results[0].spectra.size(), results[r].spectra.size());
    EXPECT_EQ(results[0].tasks_total, results[r].tasks_total);
    for (std::size_t p = 0; p < results[0].spectra.size(); ++p)
      for (std::size_t b = 0; b < results[0].spectra[p].bin_count(); ++b)
        ASSERT_EQ(results[0].spectra[p][b], results[r].spectra[p][b])
            << to_string(kAllPolicies[r]) << " point " << p << " bin " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PolicyIdentity,
    ::testing::Values(
        IdentityCase{ExecutionMode::synchronous, TaskGranularity::ion, 2, 2},
        IdentityCase{ExecutionMode::synchronous, TaskGranularity::level, 2, 2},
        IdentityCase{ExecutionMode::pipelined, TaskGranularity::ion, 4, 2},
        IdentityCase{ExecutionMode::pipelined, TaskGranularity::level, 2, 3},
        IdentityCase{ExecutionMode::pipelined, TaskGranularity::ion, 1, 1}));

TEST_F(SchedPolicyTest, ServicePathIdenticalSpectraAndSurfacesSchedStats) {
  const std::vector<apec::GridPoint> points{{0.4, 1.0, 0.0, 0},
                                            {0.9, 1.0, 0.0, 1}};
  std::vector<std::vector<apec::Spectrum>> spectra;
  for (const auto kind : kAllPolicies) {
    service::ServiceConfig cfg;
    cfg.hybrid.ranks = 2;
    cfg.hybrid.devices = 2;
    cfg.hybrid.max_queue_length = 32;
    cfg.hybrid.scheduling_policy = kind;
    service::SpectralService svc(calc_, cfg);
    service::ServiceReply reply = svc.submit(points).wait();
    EXPECT_EQ(reply.stats.sched.policy, kind);
    EXPECT_GT(reply.stats.sched.decisions, 0);
    EXPECT_GT(reply.stats.sched.median_ns(), 0.0);
    spectra.push_back(std::move(reply.spectra));
  }
  for (std::size_t r = 1; r < spectra.size(); ++r) {
    ASSERT_EQ(spectra[0].size(), spectra[r].size());
    for (std::size_t p = 0; p < spectra[0].size(); ++p)
      for (std::size_t b = 0; b < spectra[0][p].bin_count(); ++b)
        ASSERT_EQ(spectra[0][p][b], spectra[r][p][b])
            << to_string(kAllPolicies[r]) << " point " << p << " bin " << b;
  }
}

TEST_F(SchedPolicyTest, RankStartHookStagedContentionKeepsExactlyOnce) {
  // One device, one-slot queue, rank 1 held until rank 0 has claimed work:
  // both ranks then contend on the same queue, so hybrid_static_steal's
  // directed reservations fail under pressure and re-route dynamically.
  // Accounting must stay exactly-once regardless.
  const std::vector<apec::GridPoint> points{{0.3, 1.0, 0.0, 0},
                                            {0.5, 1.0, 0.0, 1},
                                            {0.7, 1.0, 0.0, 2},
                                            {0.9, 1.0, 0.0, 3}};
  for (const auto kind : kAllPolicies) {
    HybridConfig cfg;
    cfg.ranks = 2;
    cfg.devices = 1;
    cfg.max_queue_length = 1;
    cfg.scheduling_policy = kind;
    const std::int64_t total = static_cast<std::int64_t>(points.size());
    cfg.rank_start_hook = [&](int rank, const PointWorkQueue& queue) {
      if (rank == 0) return;
      while (queue.remaining() == total) std::this_thread::yield();
    };
    const HybridResult res = HybridDriver(calc_, cfg).run(points);
    EXPECT_EQ(res.spectra.size(), points.size());
    EXPECT_EQ(res.sched.decisions, static_cast<std::int64_t>(res.tasks_total))
        << to_string(kind);
    EXPECT_EQ(res.scheduling.gpu_allocations + res.scheduling.cpu_fallbacks,
              static_cast<std::int64_t>(res.tasks_total))
        << to_string(kind);
    std::int64_t history_total = 0;
    for (auto h : res.history) history_total += h;
    EXPECT_EQ(history_total, res.scheduling.gpu_allocations);
  }
}

// -------------------------------------- randomized seeded task streams

TEST_F(SchedPolicyTest, RandomizedStreamsKeepInvariants) {
  // ~200 seeded iterations over random device counts, queue caps, thread
  // counts, policies and quarantine choices. Invariants after each run:
  //   * every task gets exactly one verdict (no lost / duplicated tasks);
  //   * every load drains back to zero (each reservation freed once);
  //   * the latency histogram counts exactly the tasks processed;
  //   * a device quarantined before the stream is never assigned.
  const auto ion_tasks = tasks_for(TaskGranularity::ion);
  ASSERT_GT(ion_tasks.size(), 8u);
  for (int iter = 0; iter < 200; ++iter) {
    std::mt19937 rng(7000u + static_cast<unsigned>(iter));
    const int n_dev = 1 + static_cast<int>(rng() % 4);
    const int n_threads = 1 + static_cast<int>(rng() % 4);
    const std::int32_t lmax = 1 + static_cast<std::int32_t>(rng() % 4);
    const auto kind = kAllPolicies[iter % 3];
    const int quarantined =
        (n_dev > 1 && rng() % 3 == 0) ? static_cast<int>(rng() % n_dev) : -1;

    ShmRegion region = ShmRegion::create_inprocess(n_dev, lmax);
    if (quarantined >= 0) {
      TaskScheduler admin(region.view());
      admin.report_task_fault(quarantined, /*fatal=*/true);
    }
    BatchContext ctx;
    ctx.calc = &calc_;
    ctx.device_count = n_dev;
    auto policy = SchedulingPolicy::make(kind);
    policy->begin_batch(ctx);

    std::atomic<std::int64_t> gpu_verdicts{0};
    std::atomic<std::int64_t> cpu_verdicts{0};
    std::atomic<bool> quarantine_violated{false};
    std::vector<std::thread> threads;
    std::size_t expected_tasks = 0;
    for (int t = 0; t < n_threads; ++t) {
      const std::size_t n_tasks = 8 + rng() % (ion_tasks.size() - 8);
      const unsigned thread_seed = rng();
      expected_tasks += n_tasks;
      threads.emplace_back([&, n_tasks, thread_seed] {
        std::mt19937 trng(thread_seed);
        TaskScheduler sched(region.view());
        for (std::size_t i = 0; i < n_tasks; ++i) {
          const SpectralTask& task = ion_tasks[trng() % ion_tasks.size()];
          const int device = timed_assign(*policy, task, sched);
          if (device < 0) {
            cpu_verdicts.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (device == quarantined)
            quarantine_violated.store(true, std::memory_order_relaxed);
          gpu_verdicts.fetch_add(1, std::memory_order_relaxed);
          if ((trng() & 1u) != 0) std::this_thread::yield();
          sched.sche_free(device);
        }
      });
    }
    for (auto& th : threads) th.join();

    EXPECT_FALSE(quarantine_violated.load(std::memory_order_relaxed))
        << "iter " << iter << " policy " << to_string(kind);
    EXPECT_EQ(gpu_verdicts.load(std::memory_order_relaxed) +
                  cpu_verdicts.load(std::memory_order_relaxed),
              static_cast<std::int64_t>(expected_tasks))
        << "iter " << iter;
    const SchedulingStats stats = read_scheduling_stats(region.view(), kind);
    EXPECT_EQ(stats.decisions, static_cast<std::int64_t>(expected_tasks))
        << "iter " << iter;
    for (int d = 0; d < n_dev; ++d)
      EXPECT_EQ(region.view().load[d].load(std::memory_order_acquire), 0)
          << "iter " << iter << " device " << d;
    if (quarantined >= 0)
      EXPECT_EQ(
          region.view().history[quarantined].load(std::memory_order_relaxed),
          0)
          << "iter " << iter;
  }
}

// ----------------------------------------- autotuner-race regression

TEST(SchedulerAutotunerRace, RetuneRacesAllocAssignScans) {
  // Regression pin for the atomic max_queue_length fix: the autotuner
  // retunes the cap while ranks run sche_alloc scans and directed
  // sche_assign reservations. Non-atomic access here is a TSan report (the
  // sanitizer CI runs this suite); the assertions keep the scheduler's
  // accounting invariants on top. The tuner only grows the cap so in-flight
  // reservations can never exceed the bound in force at free time.
  constexpr int kWorkers = 4;
  constexpr int kIterations = 3000;
  ShmRegion region = ShmRegion::create_inprocess(4, 4);
  std::atomic<int> workers_done{0};
  std::thread tuner([&] {
    TaskScheduler sched(region.view());
    std::int32_t len = 4;
    while (workers_done.load(std::memory_order_acquire) < kWorkers) {
      if (len < (1 << 24)) ++len;  // monotone growth, bounded
      sched.set_max_queue_length(len);
    }
  });
  std::vector<std::thread> workers;
  std::atomic<std::int64_t> completed{0};
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      TaskScheduler sched(region.view());
      for (int i = 0; i < kIterations; ++i) {
        const int dynamic_dev = sched.sche_alloc();
        if (dynamic_dev >= 0) sched.sche_free(dynamic_dev);
        const int directed = sched.sche_assign(w);
        if (directed >= 0) sched.sche_free(directed);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
      workers_done.fetch_add(1, std::memory_order_release);
    });
  }
  tuner.join();
  for (auto& th : workers) th.join();
  EXPECT_EQ(completed.load(std::memory_order_relaxed),
            std::int64_t{kWorkers} * kIterations);
  for (int d = 0; d < 4; ++d)
    EXPECT_EQ(region.view().load[d].load(std::memory_order_acquire), 0);
  EXPECT_GE(region.view().max_queue_length.load(std::memory_order_relaxed), 4);
}

}  // namespace
