// Tests for the synthetic atomic database: elements, levels, cross
// sections, rate coefficients, CIE balance, and ion-unit accounting.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "atomic/constants.h"
#include "atomic/cross_section.h"
#include "atomic/database.h"
#include "atomic/element.h"
#include "atomic/ion_balance.h"
#include "atomic/levels.h"
#include "atomic/rates.h"
#include "util/units.h"

namespace {

using namespace hspec::atomic;
using namespace hspec::util::unit_literals;
using hspec::util::KeV;

// -------------------------------------------------------------------- elements

TEST(Elements, TableCoversHThroughZn) {
  EXPECT_EQ(element_table().size(), 30u);
  EXPECT_EQ(element(1).symbol, "H");
  EXPECT_EQ(element(2).symbol, "He");
  EXPECT_EQ(element(8).symbol, "O");
  EXPECT_EQ(element(26).symbol, "Fe");
  EXPECT_EQ(element(30).symbol, "Zn");
  for (int z = 1; z <= 30; ++z) EXPECT_EQ(element(z).z, z);
}

TEST(Elements, OutOfRangeThrows) {
  EXPECT_THROW(element(0), std::out_of_range);
  EXPECT_THROW(element(31), std::out_of_range);
}

TEST(Elements, AbundanceScaleIsHydrogenNormalized) {
  EXPECT_DOUBLE_EQ(abundance_rel_h(1), 1.0);
  EXPECT_NEAR(abundance_rel_h(2), std::pow(10.0, 10.99 - 12.0), 1e-12);
  // Abundances fall steeply past the CNO group.
  EXPECT_GT(abundance_rel_h(8), abundance_rel_h(26));
  EXPECT_GT(abundance_rel_h(26), abundance_rel_h(21));
}

// ---------------------------------------------------------------------- levels

TEST(Levels, HydrogenGroundStateIsRydberg) {
  // The (n=1, l=0) defect shifts the hydrogenic value slightly; check the
  // scale and the direction (quantum defect binds deeper).
  const double i = binding_energy_keV(1, 1, 0);
  EXPECT_NEAR(i, kRydbergKeV, 0.25 * kRydbergKeV);
  EXPECT_GT(i, kRydbergKeV);  // defect lowers n_eff below n
}

TEST(Levels, BindingScalesAsChargeSquared) {
  const double i1 = binding_energy_keV(1, 2, 1);
  const double i8 = binding_energy_keV(8, 2, 1);
  EXPECT_NEAR(i8 / i1, 64.0, 4.0);  // defect handling perturbs the pure z^2
}

TEST(Levels, BindingDecreasesWithN) {
  for (int n = 1; n < 8; ++n)
    EXPECT_GT(binding_energy_keV(6, n, 0), binding_energy_keV(6, n + 1, 0));
}

TEST(Levels, LowerLBindsDeeper) {
  EXPECT_GT(binding_energy_keV(6, 3, 0), binding_energy_keV(6, 3, 2));
}

TEST(Levels, InvalidArgumentsThrow) {
  EXPECT_THROW(binding_energy_keV(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(binding_energy_keV(1, 0, 0), std::invalid_argument);
  EXPECT_THROW(binding_energy_keV(1, 2, 2), std::invalid_argument);
}

TEST(Levels, CountFormula) {
  LevelPolicy sub{10, true};
  EXPECT_EQ(level_count(sub), 55u);
  EXPECT_EQ(make_levels(5, sub).size(), 55u);
  LevelPolicy plain{10, false};
  EXPECT_EQ(level_count(plain), 10u);
  EXPECT_EQ(make_levels(5, plain).size(), 10u);
}

TEST(Levels, StatWeightsAre2Times2lPlus1) {
  const auto levels = make_levels(3, {3, true});
  for (const Level& lv : levels)
    EXPECT_DOUBLE_EQ(lv.stat_weight, 2.0 * (2.0 * lv.l + 1.0));
}

// -------------------------------------------------------------- cross sections

TEST(CrossSection, ZeroBelowThreshold) {
  EXPECT_DOUBLE_EQ(
      kramers_photoionization_cm2(1, 1, 0.0136_keV, 0.010_keV).value(), 0.0);
  EXPECT_DOUBLE_EQ(
      recombination_cross_section_cm2(1, 1, 0.0136_keV, 0.0_keV).value(), 0.0);
  EXPECT_DOUBLE_EQ(
      recombination_cross_section_cm2(1, 1, 0.0136_keV, -1.0_keV).value(),
      0.0);
}

TEST(CrossSection, KramersThresholdValueAndDecay) {
  const KeV i = 0.0136_keV;
  const double at_threshold = kramers_photoionization_cm2(1, 1, i, i).value();
  EXPECT_NEAR(at_threshold, kKramersSigma0, 1e-22);
  // (I/E)^3 falloff.
  const double at_2i = kramers_photoionization_cm2(1, 1, i, 2.0 * i).value();
  EXPECT_NEAR(at_2i / at_threshold, 1.0 / 8.0, 1e-12);
}

TEST(CrossSection, MilneRecombinationPositiveAboveThreshold) {
  const double sigma =
      recombination_cross_section_cm2(8, 2, 0.87_keV, 0.5_keV).value();
  EXPECT_GT(sigma, 0.0);
  EXPECT_LT(sigma, 1e-18);  // physically small
}

TEST(CrossSection, RecombinationDivergesAtLowElectronEnergy) {
  // sigma_rec ~ 1/Ee as Ee -> 0 (the Milne 1/Ee factor).
  const auto lo = recombination_cross_section_cm2(8, 1, 0.87_keV, 1e-4_keV);
  const auto hi = recombination_cross_section_cm2(8, 1, 0.87_keV, 1e-2_keV);
  EXPECT_GT(lo, hi);  // same-dimension comparison, no unwrap needed
}

TEST(CrossSection, InvalidArgsThrow) {
  EXPECT_THROW(kramers_photoionization_cm2(0, 1, 1.0_keV, 2.0_keV),
               std::invalid_argument);
  EXPECT_THROW(kramers_photoionization_cm2(1, 1, -1.0_keV, 2.0_keV),
               std::invalid_argument);
}

// ----------------------------------------------------------------------- rates

TEST(Rates, IonizationPotentialIncreasesAlongIsoNuclear) {
  // Stripping electrons makes the next one harder to remove.
  for (int j = 0; j + 1 < 8; ++j)
    EXPECT_LT(ionization_potential_keV(8, j), ionization_potential_keV(8, j + 1));
}

TEST(Rates, HydrogenPotentialNearRydberg) {
  EXPECT_NEAR(ionization_potential_keV(1, 0).value(), kRydbergKeV,
              0.5 * kRydbergKeV);
}

TEST(Rates, IonizationVanishesAtLowTemperature) {
  EXPECT_GT(ionization_rate(8, 3, 1.0_keV).value(), 0.0);
  EXPECT_DOUBLE_EQ(ionization_rate(8, 3, 0.0_keV).value(), 0.0);
  EXPECT_LT(ionization_rate(8, 3, 0.001_keV), ionization_rate(8, 3, 1.0_keV));
}

TEST(Rates, RecombinationFallsWithTemperature) {
  EXPECT_GT(recombination_rate(8, 3, 0.1_keV),
            recombination_rate(8, 3, 10.0_keV));
}

TEST(Rates, BoundaryStagesThrow) {
  EXPECT_THROW(ionization_rate(8, 8, 1.0_keV), std::out_of_range);  // bare ion
  EXPECT_THROW(ionization_rate(8, -1, 1.0_keV), std::out_of_range);
  EXPECT_THROW(recombination_rate(8, 0, 1.0_keV), std::out_of_range);
  EXPECT_THROW(recombination_rate(8, 9, 1.0_keV), std::out_of_range);
}

// ------------------------------------------------------------------------- CIE

class CieAllElements : public ::testing::TestWithParam<int> {};

TEST_P(CieAllElements, FractionsFormDistribution) {
  const int z = GetParam();
  for (double kT : {0.01, 0.1, 1.0, 10.0}) {
    const auto f = cie_fractions(z, KeV{kT});
    ASSERT_EQ(f.size(), static_cast<std::size_t>(z) + 1);
    double sum = 0.0;
    for (double x : f) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12) << "Z=" << z << " kT=" << kT;
  }
}

INSTANTIATE_TEST_SUITE_P(Elements, CieAllElements,
                         ::testing::Values(1, 2, 6, 8, 14, 26, 30));

TEST(Cie, ColdPlasmaIsNeutral) {
  const auto f = cie_fractions(8, 1e-4_keV);
  EXPECT_GT(f[0], 0.99);
}

TEST(Cie, HotPlasmaIsFullyStripped) {
  const auto f = cie_fractions(8, 50.0_keV);
  EXPECT_GT(f[8], 0.5);
  EXPECT_LT(f[0], 1e-10);
}

TEST(Cie, MeanChargeMonotoneInTemperature) {
  double prev = -1.0;
  for (double kT : {0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0}) {
    const auto f = cie_fractions(26, KeV{kT});
    double mean = 0.0;
    for (int j = 0; j <= 26; ++j) mean += j * f[static_cast<std::size_t>(j)];
    EXPECT_GT(mean, prev) << "kT=" << kT;
    prev = mean;
  }
}

TEST(Cie, SingleFractionMatchesVector) {
  const auto f = cie_fractions(8, 0.3_keV);
  for (int j = 0; j <= 8; ++j)
    EXPECT_DOUBLE_EQ(cie_fraction(8, j, 0.3_keV),
                     f[static_cast<std::size_t>(j)]);
  EXPECT_THROW(cie_fraction(8, 9, 0.3_keV), std::out_of_range);
  EXPECT_THROW(cie_fractions(8, 0.0_keV), std::invalid_argument);
}

// -------------------------------------------------------------------- database

TEST(Database, DefaultHas496Units) {
  AtomicDatabase db;
  EXPECT_EQ(db.ion_count(), 496u);         // the paper's per-point task count
  EXPECT_EQ(db.rrc_ions().size(), 465u);   // charged, RRC-emitting stages
}

TEST(Database, UnitClassification) {
  AtomicDatabase db;
  std::size_t free_free = 0;
  std::size_t neutral = 0;
  for (const IonUnit& ion : db.ions()) {
    if (ion.is_free_free()) ++free_free;
    if (ion.z > 0 && ion.charge == 0) ++neutral;
  }
  EXPECT_EQ(free_free, 1u);
  EXPECT_EQ(neutral, 30u);
}

TEST(Database, NamesAreHumanReadable) {
  AtomicDatabase db;
  const IonUnit ff{0, 0};
  const IonUnit o7{8, 7};
  EXPECT_EQ(ff.name(), "free-free");
  EXPECT_EQ(o7.name(), "O+7");
}

TEST(Database, LevelsRespectPolicy) {
  DatabaseConfig cfg;
  cfg.levels = {4, true};
  AtomicDatabase db(cfg);
  const IonUnit ion{8, 3};
  EXPECT_EQ(db.level_count_for(ion), 10u);
  EXPECT_EQ(db.levels_for(ion).size(), 10u);
  EXPECT_EQ(db.level_count_for(IonUnit{0, 0}), 0u);
  EXPECT_EQ(db.level_count_for(IonUnit{8, 0}), 0u);
}

TEST(Database, SmallerElementSet) {
  DatabaseConfig cfg;
  cfg.max_z = 2;
  cfg.include_free_free = false;
  AtomicDatabase db(cfg);
  // H: 2 stages, He: 3 stages.
  EXPECT_EQ(db.ion_count(), 5u);
  EXPECT_EQ(db.rrc_ions().size(), 3u);  // H+1, He+1, He+2
}

TEST(Database, BadConfigThrows) {
  DatabaseConfig cfg;
  cfg.max_z = 0;
  EXPECT_THROW(AtomicDatabase{cfg}, std::invalid_argument);
}

}  // namespace
