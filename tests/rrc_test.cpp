// Tests for the RRC emissivity of Eq. (1)/(2): threshold behaviour, the
// Maxwellian factor-4 identity, and agreement between the closed form, QAGS,
// and the fixed GPU kernels.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "atomic/constants.h"
#include "rrc/rrc.h"

namespace {

using namespace hspec;
using namespace hspec::rrc;
using namespace hspec::util::unit_literals;
using hspec::util::KeV;

RrcChannel make_channel(int charge, int n, bool gaunt) {
  RrcChannel ch;
  ch.recombining_charge = charge;
  const auto levels = atomic::make_levels(charge, {n, false});
  ch.level = levels.at(static_cast<std::size_t>(n - 1));
  ch.gaunt_correction = gaunt;
  return ch;
}

TEST(Rrc, SawtoothEdge) {
  // Below the edge: zero. At and above the edge: positive, the classic RRC
  // sawtooth (the 1/Ee Milne divergence cancels the Maxwellian Ee flux
  // factor, leaving a finite jump at threshold).
  const auto ch = make_channel(8, 1, true);
  const PlasmaState p{1.0_keV, 1.0_per_cm3, 1.0_per_cm3};
  const KeV edge{ch.level.binding_keV};
  EXPECT_DOUBLE_EQ(rrc_power_density(ch, p, 0.5 * edge).value(), 0.0);
  EXPECT_DOUBLE_EQ(rrc_power_density(ch, p, 0.999 * edge).value(), 0.0);
  const double at_edge = rrc_power_density(ch, p, edge).value();
  EXPECT_GT(at_edge, 0.0);
  // Continuity from above: the limit equals the edge value.
  EXPECT_NEAR(rrc_power_density(ch, p, (1.0 + 1e-9) * edge).value(), at_edge,
              1e-6 * at_edge);
}

TEST(Rrc, PaperFactor4IsTheMaxwellianNormalization) {
  // 2 sqrt(Ee/pi) (kT)^{-3/2} * sqrt(2 Ee / me) ==
  //     4 (Ee/kT) sqrt(1 / (2 pi me kT))  — the "4(...)" in Eq. (1).
  const double kT = 0.7;
  const double ee = 0.33;
  const double me = atomic::kElectronRestKeV;  // any consistent mass unit
  const double lhs = 2.0 * std::sqrt(ee / std::numbers::pi) *
                     std::pow(kT, -1.5) * std::sqrt(2.0 * ee / me);
  const double rhs =
      4.0 * (ee / kT) * std::sqrt(1.0 / (2.0 * std::numbers::pi * me * kT));
  EXPECT_NEAR(lhs, rhs, 1e-15 * lhs);
}

TEST(Rrc, ScalesLinearlyInBothDensities) {
  const auto ch = make_channel(6, 2, true);
  const KeV e{2.0 * ch.level.binding_keV};
  const double base =
      rrc_power_density(ch, {1.0_keV, 1.0_per_cm3, 1.0_per_cm3}, e).value();
  EXPECT_NEAR(
      rrc_power_density(ch, {1.0_keV, 3.0_per_cm3, 1.0_per_cm3}, e).value(),
      3.0 * base, 1e-12 * base);
  EXPECT_NEAR(
      rrc_power_density(ch, {1.0_keV, 1.0_per_cm3, 5.0_per_cm3}, e).value(),
      5.0 * base, 1e-12 * base);
  EXPECT_NEAR(
      rrc_power_density(ch, {1.0_keV, 2.0_per_cm3, 2.0_per_cm3}, e).value(),
      4.0 * base, 1e-12 * base);
}

TEST(Rrc, ExponentialTailAboveEdgeWithoutGaunt) {
  const auto ch = make_channel(8, 1, false);
  const PlasmaState p{0.5_keV, 1.0_per_cm3, 1.0_per_cm3};
  const KeV i{ch.level.binding_keV};
  // Without Gaunt, dP/dE = K exp(-(E - I)/kT): check the log-slope.
  const double f1 = rrc_power_density(ch, p, i + 0.1_keV).value();
  const double f2 = rrc_power_density(ch, p, i + 0.6_keV).value();
  EXPECT_NEAR(std::log(f1 / f2), 0.5_keV / p.kT_keV, 1e-9);
}

TEST(Rrc, GauntFactorIsUnityAtThresholdAndGrows) {
  EXPECT_DOUBLE_EQ(gaunt_factor(1.0_keV, 1.0_keV), 1.0);
  EXPECT_DOUBLE_EQ(gaunt_factor(0.5_keV, 1.0_keV), 1.0);
  EXPECT_GT(gaunt_factor(3.0_keV, 1.0_keV), 1.0);
  EXPECT_LT(gaunt_factor(3.0_keV, 1.0_keV), 2.0);
}

// ------------------------------------------------- closed form vs integrators

struct Channel {
  int charge;
  int n;
  double kT;
};

class RrcExactness : public ::testing::TestWithParam<Channel> {};

TEST_P(RrcExactness, QagsMatchesClosedForm) {
  const auto [charge, n, kT] = GetParam();
  auto ch = make_channel(charge, n, false);
  const PlasmaState p{KeV{kT}, 2.0_per_cm3, 0.5_per_cm3};
  const KeV lo{0.5 * ch.level.binding_keV};
  const KeV hi{ch.level.binding_keV + 5.0 * kT};
  const double exact =
      rrc_bin_emissivity_exact_nogaunt(ch, p, lo, hi).value();
  const auto q = rrc_bin_emissivity_qags(ch, p, lo, hi);
  ASSERT_GT(exact, 0.0);
  EXPECT_NEAR(q.value.value(), exact, 1e-8 * exact);
}

TEST_P(RrcExactness, SimpsonConvergesToClosedFormOnEdgeFreeBin) {
  const auto [charge, n, kT] = GetParam();
  auto ch = make_channel(charge, n, false);
  const PlasmaState p{KeV{kT}, 1.0_per_cm3, 1.0_per_cm3};
  const KeV lo{1.05 * ch.level.binding_keV};  // safely above the edge
  const KeV hi = lo + KeV{kT};
  const double exact =
      rrc_bin_emissivity_exact_nogaunt(ch, p, lo, hi).value();
  const auto s64 =
      rrc_bin_emissivity(ch, p, lo, hi, quad::KernelMethod::simpson, 64);
  EXPECT_NEAR(s64.value.value(), exact, 1e-8 * exact);
}

INSTANTIATE_TEST_SUITE_P(
    Channels, RrcExactness,
    ::testing::Values(Channel{1, 1, 0.2}, Channel{8, 1, 0.5},
                      Channel{8, 3, 1.0}, Channel{26, 2, 2.0},
                      Channel{26, 5, 5.0}));

TEST(Rrc, EdgeBinsAreClampedLikeAlgorithm2) {
  // A bin containing the recombination edge: both the QAGS path and the
  // kernel path split/clamp at the threshold (Algorithm 2 integrates each
  // level from its own L = I), so neither integrates across the jump.
  auto ch = make_channel(8, 1, false);
  const PlasmaState p{0.5_keV, 1.0_per_cm3, 1.0_per_cm3};
  const double i = ch.level.binding_keV;
  const KeV lo{i - 0.3};
  const KeV hi{i + 0.3};
  const double exact =
      rrc_bin_emissivity_exact_nogaunt(ch, p, lo, hi).value();
  const auto q = rrc_bin_emissivity_qags(ch, p, lo, hi);
  const auto s =
      rrc_bin_emissivity(ch, p, lo, hi, quad::KernelMethod::simpson, 64);
  EXPECT_NEAR(q.value.value(), exact, 1e-8 * exact);
  EXPECT_NEAR(s.value.value(), exact, 1e-7 * exact);
  // Without the clamp, a fixed rule across the jump is visibly wrong — the
  // design reason for Algorithm 2's per-level lower limit.
  auto f = [&](double e) {
    return rrc_power_density(ch, p, KeV{e}).value();
  };
  const auto raw = quad::simpson(f, lo.value(), hi.value(), 64);
  EXPECT_GT(std::fabs(raw.value - exact) / exact, 1e-6);
}

TEST(Rrc, FullyBelowEdgeBinIsZero) {
  auto ch = make_channel(8, 1, false);
  const PlasmaState p{0.5_keV, 1.0_per_cm3, 1.0_per_cm3};
  const KeV i{ch.level.binding_keV};
  const auto q = rrc_bin_emissivity_qags(ch, p, 0.1 * i, 0.5 * i);
  EXPECT_DOUBLE_EQ(q.value.value(), 0.0);
  EXPECT_DOUBLE_EQ(
      rrc_bin_emissivity_exact_nogaunt(ch, p, 0.1 * i, 0.5 * i).value(), 0.0);
}

TEST(Rrc, RombergMatchesSimpsonOnSmoothBin) {
  auto ch = make_channel(8, 2, true);
  const PlasmaState p{1.0_keV, 1.0_per_cm3, 1.0_per_cm3};
  const KeV lo{1.2 * ch.level.binding_keV};
  const KeV hi = lo + 0.5_keV;
  const auto s = rrc_bin_emissivity(ch, p, lo, hi,
                                    quad::KernelMethod::simpson, 64);
  const auto r = rrc_bin_emissivity(ch, p, lo, hi,
                                    quad::KernelMethod::romberg, 8);
  EXPECT_NEAR(r.value.value(), s.value.value(),
              1e-8 * std::fabs(s.value.value()));
}

TEST(Rrc, InvalidInputsThrow) {
  auto ch = make_channel(8, 1, false);
  const PlasmaState bad_t{0.0_keV, 1.0_per_cm3, 1.0_per_cm3};
  EXPECT_THROW(rrc_power_density(ch, bad_t, 2.0_keV), std::invalid_argument);
  const PlasmaState p{1.0_keV, 1.0_per_cm3, 1.0_per_cm3};
  EXPECT_THROW(rrc_bin_emissivity(ch, p, 2.0_keV, 1.0_keV,
                                  quad::KernelMethod::simpson, 64),
               std::invalid_argument);
  auto gaunt_ch = make_channel(8, 1, true);
  EXPECT_THROW(
      rrc_bin_emissivity_exact_nogaunt(gaunt_ch, p, 1.0_keV, 2.0_keV),
      std::invalid_argument);
}

TEST(Rrc, HigherChargeEmitsHarderPhotons) {
  // The spectral edge of O+8 sits at higher energy than O+1's.
  const auto low = make_channel(1, 1, false);
  const auto high = make_channel(8, 1, false);
  EXPECT_GT(high.level.binding_keV, low.level.binding_keV);
}

}  // namespace
