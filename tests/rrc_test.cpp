// Tests for the RRC emissivity of Eq. (1)/(2): threshold behaviour, the
// Maxwellian factor-4 identity, and agreement between the closed form, QAGS,
// and the fixed GPU kernels.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "atomic/constants.h"
#include "rrc/rrc.h"

namespace {

using namespace hspec;
using namespace hspec::rrc;

RrcChannel make_channel(int charge, int n, bool gaunt) {
  RrcChannel ch;
  ch.recombining_charge = charge;
  const auto levels = atomic::make_levels(charge, {n, false});
  ch.level = levels.at(static_cast<std::size_t>(n - 1));
  ch.gaunt_correction = gaunt;
  return ch;
}

TEST(Rrc, SawtoothEdge) {
  // Below the edge: zero. At and above the edge: positive, the classic RRC
  // sawtooth (the 1/Ee Milne divergence cancels the Maxwellian Ee flux
  // factor, leaving a finite jump at threshold).
  const auto ch = make_channel(8, 1, true);
  const PlasmaState p{1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(rrc_power_density(ch, p, 0.5 * ch.level.binding_keV), 0.0);
  EXPECT_DOUBLE_EQ(rrc_power_density(ch, p, 0.999 * ch.level.binding_keV),
                   0.0);
  const double at_edge = rrc_power_density(ch, p, ch.level.binding_keV);
  EXPECT_GT(at_edge, 0.0);
  // Continuity from above: the limit equals the edge value.
  EXPECT_NEAR(rrc_power_density(ch, p, ch.level.binding_keV * (1.0 + 1e-9)),
              at_edge, 1e-6 * at_edge);
}

TEST(Rrc, PaperFactor4IsTheMaxwellianNormalization) {
  // 2 sqrt(Ee/pi) (kT)^{-3/2} * sqrt(2 Ee / me) ==
  //     4 (Ee/kT) sqrt(1 / (2 pi me kT))  — the "4(...)" in Eq. (1).
  const double kT = 0.7;
  const double ee = 0.33;
  const double me = atomic::kElectronRestKeV;  // any consistent mass unit
  const double lhs = 2.0 * std::sqrt(ee / std::numbers::pi) *
                     std::pow(kT, -1.5) * std::sqrt(2.0 * ee / me);
  const double rhs =
      4.0 * (ee / kT) * std::sqrt(1.0 / (2.0 * std::numbers::pi * me * kT));
  EXPECT_NEAR(lhs, rhs, 1e-15 * lhs);
}

TEST(Rrc, ScalesLinearlyInBothDensities) {
  const auto ch = make_channel(6, 2, true);
  const double e = 2.0 * ch.level.binding_keV;
  const double base = rrc_power_density(ch, {1.0, 1.0, 1.0}, e);
  EXPECT_NEAR(rrc_power_density(ch, {1.0, 3.0, 1.0}, e), 3.0 * base, 1e-12 * base);
  EXPECT_NEAR(rrc_power_density(ch, {1.0, 1.0, 5.0}, e), 5.0 * base, 1e-12 * base);
  EXPECT_NEAR(rrc_power_density(ch, {1.0, 2.0, 2.0}, e), 4.0 * base, 1e-12 * base);
}

TEST(Rrc, ExponentialTailAboveEdgeWithoutGaunt) {
  const auto ch = make_channel(8, 1, false);
  const PlasmaState p{0.5, 1.0, 1.0};
  const double i = ch.level.binding_keV;
  // Without Gaunt, dP/dE = K exp(-(E - I)/kT): check the log-slope.
  const double f1 = rrc_power_density(ch, p, i + 0.1);
  const double f2 = rrc_power_density(ch, p, i + 0.6);
  EXPECT_NEAR(std::log(f1 / f2), 0.5 / p.kT_keV, 1e-9);
}

TEST(Rrc, GauntFactorIsUnityAtThresholdAndGrows) {
  EXPECT_DOUBLE_EQ(gaunt_factor(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(gaunt_factor(0.5, 1.0), 1.0);
  EXPECT_GT(gaunt_factor(3.0, 1.0), 1.0);
  EXPECT_LT(gaunt_factor(3.0, 1.0), 2.0);
}

// ------------------------------------------------- closed form vs integrators

struct Channel {
  int charge;
  int n;
  double kT;
};

class RrcExactness : public ::testing::TestWithParam<Channel> {};

TEST_P(RrcExactness, QagsMatchesClosedForm) {
  const auto [charge, n, kT] = GetParam();
  auto ch = make_channel(charge, n, false);
  const PlasmaState p{kT, 2.0, 0.5};
  const double lo = 0.5 * ch.level.binding_keV;
  const double hi = ch.level.binding_keV + 5.0 * kT;
  const double exact = rrc_bin_emissivity_exact_nogaunt(ch, p, lo, hi);
  const auto q = rrc_bin_emissivity_qags(ch, p, lo, hi);
  ASSERT_GT(exact, 0.0);
  EXPECT_NEAR(q.value, exact, 1e-8 * exact);
}

TEST_P(RrcExactness, SimpsonConvergesToClosedFormOnEdgeFreeBin) {
  const auto [charge, n, kT] = GetParam();
  auto ch = make_channel(charge, n, false);
  const PlasmaState p{kT, 1.0, 1.0};
  const double lo = 1.05 * ch.level.binding_keV;  // safely above the edge
  const double hi = lo + kT;
  const double exact = rrc_bin_emissivity_exact_nogaunt(ch, p, lo, hi);
  const auto s64 =
      rrc_bin_emissivity(ch, p, lo, hi, quad::KernelMethod::simpson, 64);
  EXPECT_NEAR(s64.value, exact, 1e-8 * exact);
}

INSTANTIATE_TEST_SUITE_P(
    Channels, RrcExactness,
    ::testing::Values(Channel{1, 1, 0.2}, Channel{8, 1, 0.5},
                      Channel{8, 3, 1.0}, Channel{26, 2, 2.0},
                      Channel{26, 5, 5.0}));

TEST(Rrc, EdgeBinsAreClampedLikeAlgorithm2) {
  // A bin containing the recombination edge: both the QAGS path and the
  // kernel path split/clamp at the threshold (Algorithm 2 integrates each
  // level from its own L = I), so neither integrates across the jump.
  auto ch = make_channel(8, 1, false);
  const PlasmaState p{0.5, 1.0, 1.0};
  const double i = ch.level.binding_keV;
  const double lo = i - 0.3;
  const double hi = i + 0.3;
  const double exact = rrc_bin_emissivity_exact_nogaunt(ch, p, lo, hi);
  const auto q = rrc_bin_emissivity_qags(ch, p, lo, hi);
  const auto s =
      rrc_bin_emissivity(ch, p, lo, hi, quad::KernelMethod::simpson, 64);
  EXPECT_NEAR(q.value, exact, 1e-8 * exact);
  EXPECT_NEAR(s.value, exact, 1e-7 * exact);
  // Without the clamp, a fixed rule across the jump is visibly wrong — the
  // design reason for Algorithm 2's per-level lower limit.
  auto f = [&](double e) { return rrc_power_density(ch, p, e); };
  const auto raw = quad::simpson(f, lo, hi, 64);
  EXPECT_GT(std::fabs(raw.value - exact) / exact, 1e-6);
}

TEST(Rrc, FullyBelowEdgeBinIsZero) {
  auto ch = make_channel(8, 1, false);
  const PlasmaState p{0.5, 1.0, 1.0};
  const double i = ch.level.binding_keV;
  const auto q = rrc_bin_emissivity_qags(ch, p, 0.1 * i, 0.5 * i);
  EXPECT_DOUBLE_EQ(q.value, 0.0);
  EXPECT_DOUBLE_EQ(rrc_bin_emissivity_exact_nogaunt(ch, p, 0.1 * i, 0.5 * i),
                   0.0);
}

TEST(Rrc, RombergMatchesSimpsonOnSmoothBin) {
  auto ch = make_channel(8, 2, true);
  const PlasmaState p{1.0, 1.0, 1.0};
  const double lo = 1.2 * ch.level.binding_keV;
  const double hi = lo + 0.5;
  const auto s = rrc_bin_emissivity(ch, p, lo, hi,
                                    quad::KernelMethod::simpson, 64);
  const auto r = rrc_bin_emissivity(ch, p, lo, hi,
                                    quad::KernelMethod::romberg, 8);
  EXPECT_NEAR(r.value, s.value, 1e-8 * std::fabs(s.value));
}

TEST(Rrc, InvalidInputsThrow) {
  auto ch = make_channel(8, 1, false);
  const PlasmaState bad_t{0.0, 1.0, 1.0};
  EXPECT_THROW(rrc_power_density(ch, bad_t, 2.0), std::invalid_argument);
  const PlasmaState p{1.0, 1.0, 1.0};
  EXPECT_THROW(
      rrc_bin_emissivity(ch, p, 2.0, 1.0, quad::KernelMethod::simpson, 64),
      std::invalid_argument);
  auto gaunt_ch = make_channel(8, 1, true);
  EXPECT_THROW(rrc_bin_emissivity_exact_nogaunt(gaunt_ch, p, 1.0, 2.0),
               std::invalid_argument);
}

TEST(Rrc, HigherChargeEmitsHarderPhotons) {
  // The spectral edge of O+8 sits at higher energy than O+1's.
  const auto low = make_channel(1, 1, false);
  const auto high = make_channel(8, 1, false);
  EXPECT_GT(high.level.binding_keV, low.level.binding_keV);
}

}  // namespace
