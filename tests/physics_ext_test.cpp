// Tests for the physics extensions: instrument response folding, the
// two-photon continuum, and the QNG non-adaptive integrator.

#include <gtest/gtest.h>

#include <cmath>

#include "apec/calculator.h"
#include "apec/fitting.h"
#include "apec/response.h"
#include "apec/two_photon.h"
#include "quad/qng.h"

namespace {

using namespace hspec;
using namespace hspec::apec;
using namespace hspec::util::unit_literals;

// ------------------------------------------------------------------ response

TEST(Response, ConservesCountsAwayFromEdges) {
  const auto grid = EnergyGrid::linear(0.5, 5.0, 200);
  const GaussianResponse rmf(grid, {0.05, 0.5, 5.0});
  Spectrum model(grid);
  model[100] = 7.0;  // a line well inside the band
  const Spectrum folded = rmf.fold(model);
  EXPECT_NEAR(folded.total(), 7.0, 1e-9);
}

TEST(Response, BroadensALine) {
  const auto grid = EnergyGrid::linear(0.5, 5.0, 200);
  const GaussianResponse rmf(grid);
  Spectrum model(grid);
  model[100] = 1.0;
  const Spectrum folded = rmf.fold(model);
  // Peak drops, neighbours fill in, center stays put.
  EXPECT_LT(folded[100], 1.0);
  EXPECT_GT(folded[100], folded[97]);
  EXPECT_GT(folded[99], 0.0);
  EXPECT_GT(folded[101], 0.0);
  std::size_t peak = 0;
  for (std::size_t b = 1; b < folded.bin_count(); ++b)
    if (folded[b] > folded[peak]) peak = b;
  EXPECT_EQ(peak, 100u);
}

TEST(Response, ResolutionDegradesWithEnergyByAlpha) {
  const auto grid = EnergyGrid::linear(0.5, 8.0, 400);
  const GaussianResponse rmf(grid, {0.05, 0.5, 5.0});
  auto width_at = [&](std::size_t bin) {
    Spectrum model(grid);
    model[bin] = 1.0;
    const Spectrum folded = rmf.fold(model);
    // Count bins above half the folded peak.
    double peak = 0.0;
    for (std::size_t b = 0; b < folded.bin_count(); ++b)
      peak = std::max(peak, folded[b]);
    std::size_t above = 0;
    for (std::size_t b = 0; b < folded.bin_count(); ++b)
      if (folded[b] > 0.5 * peak) ++above;
    return above;
  };
  EXPECT_GT(width_at(350), width_at(50));  // higher E, wider response
}

TEST(Response, SmoothContinuumNearlyUnchanged) {
  const auto grid = EnergyGrid::linear(0.5, 5.0, 200);
  const GaussianResponse rmf(grid);
  Spectrum model(grid);
  for (std::size_t b = 0; b < 200; ++b)
    model[b] = std::exp(-grid.center(b));
  const Spectrum folded = rmf.fold(model);
  for (std::size_t b = 20; b < 180; ++b)
    EXPECT_NEAR(folded[b], model[b], 0.05 * model[b]) << "bin " << b;
}

TEST(Response, ValidatesInput) {
  const auto grid = EnergyGrid::linear(0.5, 5.0, 10);
  EXPECT_THROW(GaussianResponse(grid, {0.0, 0.5, 5.0}),
               std::invalid_argument);
  EXPECT_THROW(GaussianResponse(grid, {0.05, 0.5, 0.5}),
               std::invalid_argument);
  const GaussianResponse rmf(grid);
  const auto other = EnergyGrid::linear(0.5, 5.0, 11);
  Spectrum wrong(other);
  EXPECT_THROW(rmf.fold(wrong), std::invalid_argument);
}

// ---------------------------------------------------------------- two-photon

TEST(TwoPhoton, ProfileNormalization) {
  // integral phi dy = 2 photons; integral y phi dy = 1 (all the energy).
  const int n = 20'000;
  double photons = 0.0;
  double energy = 0.0;
  for (int i = 0; i < n; ++i) {
    const double y = (i + 0.5) / n;
    photons += two_photon_profile(y) / n;
    energy += y * two_photon_profile(y) / n;
  }
  EXPECT_NEAR(photons, 2.0, 1e-6);
  EXPECT_NEAR(energy, 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(two_photon_profile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(two_photon_profile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(two_photon_profile(1.5), 0.0);
}

TEST(TwoPhoton, ChannelEnergyAndScaling) {
  const atomic::IonUnit o8{8, 8};
  const auto ch = two_photon_channel(o8, 1.0_keV, 1.0_per_cm3, 1.0_per_cm3);
  // 2s-1s gap = (3/4) Z^2 Ry.
  EXPECT_NEAR(ch.transition_keV.value(), 0.75 * 64.0 * 0.0136057, 1e-3);
  EXPECT_GT(ch.decay_rate, 0.0);
  // Linear in both densities.
  const auto ch2 = two_photon_channel(o8, 1.0_keV, 2.0_per_cm3, 3.0_per_cm3);
  EXPECT_NEAR(ch2.decay_rate / ch.decay_rate, 6.0, 1e-9);
  // Inert units produce nothing.
  EXPECT_DOUBLE_EQ(two_photon_channel({0, 0}, 1.0_keV, 1.0_per_cm3, 1.0_per_cm3).decay_rate, 0.0);
  EXPECT_DOUBLE_EQ(two_photon_channel({8, 0}, 1.0_keV, 1.0_per_cm3, 1.0_per_cm3).decay_rate, 0.0);
}

TEST(TwoPhoton, DepositConservesEnergyBelowTheEdge) {
  const atomic::IonUnit o8{8, 8};
  const auto ch = two_photon_channel(o8, 1.0_keV, 1.0_per_cm3, 1.0_per_cm3);
  // Grid covering [~0, E_tot] fully.
  const auto grid = EnergyGrid::linear(1e-4, ch.transition_keV.value() * 1.01, 400);
  Spectrum spec(grid);
  accumulate_two_photon(ch, spec);
  const double e_tot = ch.transition_keV.value();
  EXPECT_NEAR(spec.total(), ch.decay_rate * e_tot,
              1e-3 * ch.decay_rate * e_tot);
  // Nothing above the transition energy.
  for (std::size_t b = 0; b < grid.bin_count(); ++b)
    if (grid.lo(b) > ch.transition_keV.value()) EXPECT_DOUBLE_EQ(spec[b], 0.0);
}

TEST(TwoPhoton, CalculatorOptionAddsContinuum) {
  atomic::DatabaseConfig db_cfg;
  db_cfg.max_z = 8;
  db_cfg.levels = {2, true};
  atomic::AtomicDatabase db(db_cfg);
  const auto grid = EnergyGrid::wavelength(5.0, 40.0, 64);
  CalcOptions off;
  off.integration.adaptive = false;
  CalcOptions on = off;
  on.include_two_photon = true;
  const auto without =
      SpectrumCalculator(db, grid, off).calculate({0.4, 1.0, 0.0, 0});
  const auto with =
      SpectrumCalculator(db, grid, on).calculate({0.4, 1.0, 0.0, 0});
  EXPECT_GT(with.total(), without.total());
}

// ----------------------------------------------------------------------- QNG

TEST(Qng, SmoothIntegrandOneRule) {
  auto f = [](double x) { return std::cos(x); };
  const auto r = quad::qng(f, 0.0, 1.0, {1e-10, 1e-10});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, std::sin(1.0), 1e-10);
  EXPECT_EQ(r.evaluations, 15u);  // GK15 suffices
}

TEST(Qng, EscalatesToK21) {
  auto f = [](double x) { return std::exp(-30.0 * x) * std::sin(40.0 * x); };
  const auto r = quad::qng(f, 0.0, 1.0, {1e-10, 1e-10});
  EXPECT_GE(r.evaluations, 15u + 21u);  // needed the bigger rule (or failed)
}

TEST(Qng, ReportsFailureOnHardIntegrands) {
  auto f = [](double x) { return 1.0 / std::sqrt(x > 0.0 ? x : 1e-300); };
  const auto r = quad::qng(f, 0.0, 1.0, {1e-10, 1e-10});
  EXPECT_FALSE(r.converged);  // non-adaptive rules cannot do singularities
}

TEST(Qng, EmptyInterval) {
  auto f = [](double) { return 1.0; };
  const auto r = quad::qng(f, 3.0, 3.0);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_TRUE(r.converged);
}

// ------------------------------------------- response inside the fit loop

TEST(ResponseFit, FoldedModelsStillRecoverTheTemperature) {
  // The realistic XSPEC workflow: the observation is the truth folded
  // through the instrument response, and every trial model folds through
  // the same response before the chi-squared comparison.
  atomic::DatabaseConfig db_cfg;
  db_cfg.max_z = 8;
  db_cfg.levels = {2, true};
  atomic::AtomicDatabase db(db_cfg);
  const auto grid = EnergyGrid::wavelength(2.0, 40.0, 64);
  CalcOptions opt;
  opt.integration.adaptive = false;
  SpectrumCalculator calc(db, grid, opt);
  const GaussianResponse rmf(grid, {0.03, 0.5, 5.0});

  const double kT_true = 0.6;
  const Spectrum folded_truth = rmf.fold(calc.calculate({kT_true, 1.0, 0.0, 0}));
  ObservedSpectrum obs;
  obs.counts.assign(folded_truth.values().begin(),
                    folded_truth.values().end());
  obs.sigma.assign(folded_truth.bin_count(),
                   1e-3 * folded_truth.peak() + 1e-30);

  auto model = [&](double kT) {
    return rmf.fold(calc.calculate({kT, 1.0, 0.0, 0}));
  };
  FitOptions fit_opt;
  fit_opt.kt_min_keV = 0.2;
  fit_opt.kt_max_keV = 2.0;
  const FitResult fit = fit_temperature(obs, model, fit_opt);
  EXPECT_NEAR(fit.kT_keV, kT_true, 0.02 * kT_true);
  EXPECT_LT(fit.reduced_chi2, 0.1);
}

}  // namespace
