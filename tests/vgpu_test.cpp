// Tests for the virtual GPU substrate: device properties, cost model,
// memory management, kernel launch semantics, and Algorithm 2's kernel.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <vector>

#include "quad/newton_cotes.h"
#include "vgpu/device.h"
#include "vgpu/integr_kernel.h"

namespace {

using namespace hspec;
using namespace hspec::vgpu;

TEST(DeviceProperties, PaperTestbedPreset) {
  const DeviceProperties p = tesla_c2075();
  EXPECT_EQ(p.total_cores(), 448);            // 14 SM x 32
  EXPECT_DOUBLE_EQ(p.core_clock_ghz, 1.15);
  EXPECT_DOUBLE_EQ(p.dp_peak_gflops, 515.0);
  EXPECT_EQ(p.max_concurrent_kernels, 1);     // Fermi serial execution
  EXPECT_EQ(p.arch, Architecture::fermi);
  EXPECT_EQ(p.memory_bytes, std::size_t{6} * 1024 * 1024 * 1024);
}

TEST(DeviceProperties, KeplerHasHyperQ) {
  const DeviceProperties p = tesla_k20();
  EXPECT_EQ(p.max_concurrent_kernels, 32);
  EXPECT_EQ(p.arch, Architecture::kepler);
  EXPECT_EQ(to_string(p.arch), "kepler");
}

TEST(CostModel, LaunchOverheadIsAdditive) {
  const GpuCostModel m(tesla_c2075());
  const double empty = m.kernel_time_s({0.0, 0});
  EXPECT_DOUBLE_EQ(empty, m.launch_overhead_s());
  const double loaded = m.kernel_time_s({1e9, 0});
  EXPECT_GT(loaded, empty);
  // 1e9 flops at 25% of 515 GFLOPS ~ 7.8 ms.
  EXPECT_NEAR(loaded - empty, 1e9 / (515e9 * 0.25), 1e-6);
}

TEST(CostModel, TransferLatencyPlusBandwidth) {
  const GpuCostModel m(tesla_c2075());
  const double small = m.transfer_time_s(8);
  EXPECT_NEAR(small, m.properties().memcpy_latency_s, 1e-7);
  const double big = m.transfer_time_s(6'000'000);  // ~1 ms at 6 GB/s
  EXPECT_NEAR(big, m.properties().memcpy_latency_s + 1e-3, 1e-5);
}

TEST(CostModel, MemoryBoundKernelsChargedByBandwidth) {
  const GpuCostModel m(tesla_c2075());
  WorkEstimate w;
  w.flops = 1.0;                       // negligible compute
  w.device_bytes = 144'000'000;        // 1 ms at 144 GB/s
  EXPECT_NEAR(m.kernel_time_s(w), 1e-3 + m.launch_overhead_s(), 1e-5);
}

// ---------------------------------------------------------------------- device

TEST(Device, AllocationBudgetEnforced) {
  DeviceProperties p = tesla_c2075();
  p.memory_bytes = 1024;
  Device dev(p, 0);
  auto a = dev.alloc(512);
  EXPECT_EQ(dev.bytes_allocated(), 512u);
  auto b = dev.alloc(512);
  EXPECT_EQ(dev.bytes_allocated(), 1024u);
  EXPECT_THROW(dev.alloc(1), std::bad_alloc);
  b = DeviceBuffer();  // release
  EXPECT_EQ(dev.bytes_allocated(), 512u);
  EXPECT_NO_THROW(dev.alloc(256));
  EXPECT_THROW(dev.alloc(0), std::invalid_argument);
}

TEST(Device, BufferMoveTransfersOwnership) {
  Device dev(tesla_c2075(), 0);
  DeviceBuffer a = dev.alloc(64);
  void* ptr = a.device_ptr();
  DeviceBuffer b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.device_ptr(), ptr);
  EXPECT_EQ(dev.bytes_allocated(), 64u);
}

TEST(Device, MemcpyRoundTripAndAccounting) {
  Device dev(tesla_c2075(), 3);
  EXPECT_EQ(dev.id(), 3);
  std::vector<double> in{1.0, 2.0, 3.0};
  std::vector<double> out(3, 0.0);
  DeviceBuffer buf = dev.alloc(3 * sizeof(double));
  dev.copy_to_device(buf, in.data(), 3 * sizeof(double));
  dev.copy_to_host(out.data(), buf, 3 * sizeof(double));
  EXPECT_EQ(out, in);
  const DeviceStats st = dev.stats();
  EXPECT_EQ(st.h2d_copies, 1u);
  EXPECT_EQ(st.d2h_copies, 1u);
  EXPECT_EQ(st.bytes_h2d, 24u);
  EXPECT_GT(st.transfer_time_s, 0.0);
  EXPECT_THROW(dev.copy_to_device(buf, in.data(), 999), std::out_of_range);
}

TEST(Device, LaunchVisitsEveryThreadOnce) {
  Device dev(tesla_c2075(), 0);
  std::set<std::size_t> seen;
  std::size_t calls = 0;
  dev.launch({3, 1, 1}, {4, 1, 1}, {}, [&](const KernelCtx& c) {
    ++calls;
    seen.insert(c.global_x());
    EXPECT_EQ(c.stride_x(), 12u);
  });
  EXPECT_EQ(calls, 12u);
  EXPECT_EQ(seen.size(), 12u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 11u);
}

TEST(Device, MultiDimensionalLaunch) {
  Device dev(tesla_c2075(), 0);
  std::size_t calls = 0;
  dev.launch({2, 2, 1}, {2, 1, 2}, {}, [&](const KernelCtx&) { ++calls; });
  EXPECT_EQ(calls, 16u);
  EXPECT_THROW(dev.launch({0, 1, 1}, {1, 1, 1}, {}, [](const KernelCtx&) {}),
               std::invalid_argument);
}

TEST(Device, VirtualClockAccumulates) {
  Device dev(tesla_c2075(), 0);
  EXPECT_DOUBLE_EQ(dev.busy_time_s(), 0.0);
  dev.launch({1, 1, 1}, {1, 1, 1}, {1e9, 0}, [](const KernelCtx&) {});
  const double t1 = dev.busy_time_s();
  EXPECT_GT(t1, 7e-3);
  dev.launch({1, 1, 1}, {1, 1, 1}, {1e9, 0}, [](const KernelCtx&) {});
  EXPECT_NEAR(dev.busy_time_s(), 2.0 * t1, 1e-9);
  EXPECT_EQ(dev.stats().kernels_launched, 2u);
}

TEST(DeviceRegistry, ExplicitCountAndEnvDetect) {
  DeviceRegistry three(3);
  EXPECT_EQ(three.device_count(), 3u);
  EXPECT_TRUE(three.gpu_available());
  EXPECT_EQ(three.device(2).id(), 2);

  ::setenv("HSPEC_VGPU_COUNT", "2", 1);
  DeviceRegistry detected(-1);
  EXPECT_EQ(detected.device_count(), 2u);
  ::unsetenv("HSPEC_VGPU_COUNT");
  DeviceRegistry none(-1);
  EXPECT_FALSE(none.gpu_available());  // runs normally without GPU devices
  EXPECT_THROW(DeviceRegistry{65}, std::invalid_argument);
}

// --------------------------------------------------------------- Algorithm 2

TEST(GpuIntegr, MatchesHostSimpsonPerBin) {
  Device dev(tesla_c2075(), 0);
  auto f = [](double x) { return std::exp(-x) * x; };
  const std::size_t n = 37;
  std::vector<double> gpu(n);
  gpu_integr(dev, 0.0, 3.0, f, gpu);
  for (std::size_t b = 0; b < n; ++b) {
    const double lo = 0.0 + 3.0 * static_cast<double>(b) / n;
    const double hi = 0.0 + 3.0 * static_cast<double>(b + 1) / n;
    const double host = quad::simpson(f, lo, hi, 64).value;
    EXPECT_NEAR(gpu[b], host, 1e-15 + 1e-12 * std::fabs(host)) << "bin " << b;
  }
}

TEST(GpuIntegr, SumOfBinsIsTotalIntegral) {
  Device dev(tesla_c2075(), 0);
  auto f = [](double x) { return std::sin(x); };
  std::vector<double> gpu(64);
  gpu_integr(dev, 0.0, 3.141592653589793, f, gpu);
  double total = 0.0;
  for (double v : gpu) total += v;
  EXPECT_NEAR(total, 2.0, 1e-9);
}

TEST(GpuIntegr, AccumulateModeAddsAcrossLaunches) {
  Device dev(tesla_c2075(), 0);
  auto f = [](double x) { return x; };
  const std::size_t n = 8;
  DeviceBuffer emi = dev.alloc(n * sizeof(double));
  dev.memset_device(emi, 0, n * sizeof(double));
  IntegrLaunchConfig cfg;
  cfg.accumulate = true;
  gpu_integr_device(dev, 0.0, 1.0, n, f, emi, cfg);
  gpu_integr_device(dev, 0.0, 1.0, n, f, emi, cfg);  // "levels" accumulate
  std::vector<double> out(n);
  dev.copy_to_host(out.data(), emi, n * sizeof(double));
  double total = 0.0;
  for (double v : out) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);  // 2 x integral of x over [0,1]
}

TEST(GpuIntegr, NonUniformEdges) {
  Device dev(tesla_c2075(), 0);
  auto f = [](double x) { return 1.0 / x; };
  const std::vector<double> edges{1.0, 2.0, 4.0, 8.0};  // log-uniform
  DeviceBuffer edges_dev = dev.alloc(edges.size() * sizeof(double));
  dev.copy_to_device(edges_dev, edges.data(), edges.size() * sizeof(double));
  DeviceBuffer emi = dev.alloc(3 * sizeof(double));
  gpu_integr_edges_device(dev, edges_dev, 3, f, emi);
  std::vector<double> out(3);
  dev.copy_to_host(out.data(), emi, 3 * sizeof(double));
  for (double v : out) EXPECT_NEAR(v, std::log(2.0), 1e-8);
}

TEST(GpuIntegr, WorkEstimateScalesWithMethod) {
  IntegrLaunchConfig simpson;
  IntegrLaunchConfig romberg13;
  romberg13.method = quad::KernelMethod::romberg;
  romberg13.method_param = 13;
  const auto w_s = integr_work(1000, simpson);
  const auto w_r = integr_work(1000, romberg13);
  EXPECT_NEAR(w_r.flops / w_s.flops, 8193.0 / 129.0, 1e-9);
}

TEST(GpuIntegr, ValidatesArguments) {
  Device dev(tesla_c2075(), 0);
  auto f = [](double x) { return x; };
  DeviceBuffer small = dev.alloc(8);
  EXPECT_THROW(gpu_integr_device(dev, 0.0, 1.0, 4, f, small),
               std::out_of_range);
  DeviceBuffer ok = dev.alloc(4 * sizeof(double));
  EXPECT_THROW(gpu_integr_device(dev, 1.0, 1.0, 4, f, ok),
               std::invalid_argument);
  EXPECT_THROW(gpu_integr_device(dev, 0.0, 1.0, 0, f, ok),
               std::invalid_argument);
}

}  // namespace
