// Tests for the fault-injection and recovery layer (DESIGN.md §11): the
// FaultPlan oracle itself, and end-to-end hybrid runs under each injected
// fault class. The contract under test: with any single fault type injected
// at rates up to 20%, the hybrid spectrum — synchronous or pipelined — is
// bit-identical to the fault-free reference, and the FaultStats ledger
// balances (every injection retried, every task completed exactly once).

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "apec/calculator.h"
#include "core/hybrid.h"
#include "util/fault.h"

namespace {

using namespace hspec;
using namespace hspec::core;
using util::FaultPlan;
using util::FaultPlanConfig;
using util::FaultSite;

// ---------------------------------------------------------------- FaultPlan

TEST(FaultPlan, SameSeedSameVerdicts) {
  FaultPlanConfig cfg;
  cfg.seed = 1234;
  cfg.transfer_fault_rate = 0.2;
  cfg.kernel_fault_rate = 0.1;
  cfg.kernel_timeout_rate = 0.05;
  cfg.stream_stall_rate = 0.15;
  cfg.alloc_fault_rate = 0.08;
  FaultPlan a(cfg);
  FaultPlan b(cfg);

  const FaultSite sites[] = {FaultSite::h2d_transfer,  FaultSite::d2h_transfer,
                             FaultSite::kernel_launch, FaultSite::kernel_timeout,
                             FaultSite::stream_stall,  FaultSite::buffer_alloc};
  for (int round = 0; round < 50; ++round)
    for (FaultSite site : sites)
      for (int dev = 0; dev < 2; ++dev) {
        const auto da = a.query(site, dev);
        const auto db = b.query(site, dev);
        ASSERT_EQ(da.fail, db.fail);
        ASSERT_EQ(da.site, db.site);
        ASSERT_EQ(da.penalty_s, db.penalty_s);
      }
  EXPECT_EQ(a.stats().injected_total, b.stats().injected_total);
  EXPECT_GT(a.stats().injected_total, 0);
  EXPECT_EQ(a.stats().queries, 50 * 6 * 2);
}

TEST(FaultPlan, InjectionFrequencyTracksTheConfiguredRate) {
  FaultPlanConfig cfg;
  cfg.seed = 99;
  cfg.transfer_fault_rate = 0.2;
  FaultPlan plan(cfg);
  constexpr int kQueries = 2000;
  int injected = 0;
  for (int i = 0; i < kQueries; ++i)
    if (plan.query(FaultSite::h2d_transfer, 0).fail) ++injected;
  // 400 expected, sigma ~= 18: [300, 500] is > 5 sigma on both sides.
  EXPECT_GT(injected, 300);
  EXPECT_LT(injected, 500);
  EXPECT_EQ(plan.stats().injected_total, injected);
  EXPECT_EQ(plan.stats().injected[static_cast<int>(FaultSite::h2d_transfer)],
            injected);
}

TEST(FaultPlan, ZeroRatesNeverInject) {
  FaultPlan plan(FaultPlanConfig{});
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(plan.query(FaultSite::kernel_launch, 0).fail);
    EXPECT_FALSE(plan.query(FaultSite::d2h_transfer, 1).fail);
  }
  EXPECT_EQ(plan.stats().injected_total, 0);
  EXPECT_EQ(plan.stats().queries, 400);
}

TEST(FaultPlan, PenaltiesComeFromTheConfig) {
  FaultPlanConfig cfg;
  cfg.kernel_timeout_rate = 1.0;
  cfg.stream_stall_rate = 1.0;
  cfg.kernel_timeout_penalty_s = 3.5;
  cfg.stream_stall_penalty_s = 0.25;
  FaultPlan plan(cfg);
  const auto t = plan.query(FaultSite::kernel_timeout, 0);
  ASSERT_TRUE(t.fail);
  EXPECT_EQ(t.site, FaultSite::kernel_timeout);
  EXPECT_EQ(t.penalty_s, 3.5);
  const auto s = plan.query(FaultSite::stream_stall, 0);
  ASSERT_TRUE(s.fail);
  EXPECT_EQ(s.site, FaultSite::stream_stall);
  EXPECT_EQ(s.penalty_s, 0.25);
}

TEST(FaultPlan, DeviceDiesAfterTheConfiguredOpCount) {
  FaultPlanConfig cfg;
  cfg.dead_device = 1;
  cfg.dies_after_ops = 5;
  FaultPlan plan(cfg);
  // The doomed device survives exactly dies_after_ops queries...
  for (int i = 0; i < 5; ++i)
    EXPECT_FALSE(plan.query(FaultSite::kernel_launch, 1).fail) << "op " << i;
  EXPECT_FALSE(plan.device_dead(1));
  // ...then every operation on it fails, permanently, at any site.
  for (int i = 0; i < 3; ++i) {
    const auto d = plan.query(FaultSite::h2d_transfer, 1);
    ASSERT_TRUE(d.fail);
    EXPECT_EQ(d.site, FaultSite::device_death);
  }
  EXPECT_TRUE(plan.device_dead(1));
  // Death is counted once, not per failing query.
  EXPECT_EQ(plan.stats().device_deaths, 1);
  // Other devices are unaffected.
  EXPECT_FALSE(plan.query(FaultSite::kernel_launch, 0).fail);
  EXPECT_FALSE(plan.device_dead(0));
}

TEST(FaultPlan, ValidatesConfig) {
  FaultPlanConfig bad;
  bad.transfer_fault_rate = 1.5;
  EXPECT_THROW(FaultPlan{bad}, std::invalid_argument);
  FaultPlanConfig neg;
  neg.kernel_fault_rate = -0.1;
  EXPECT_THROW(FaultPlan{neg}, std::invalid_argument);
  FaultPlanConfig dev;
  dev.dead_device = util::kMaxFaultDevices;
  EXPECT_THROW(FaultPlan{dev}, std::invalid_argument);
  FaultPlanConfig ops;
  ops.dead_device = 0;
  ops.dies_after_ops = -1;
  EXPECT_THROW(FaultPlan{ops}, std::invalid_argument);
}

TEST(FaultPlan, FaultErrorCarriesSiteAndDevice) {
  const util::FaultError e(FaultSite::d2h_transfer, 3);
  EXPECT_EQ(e.site(), FaultSite::d2h_transfer);
  EXPECT_EQ(e.device(), 3);
  EXPECT_NE(std::string(e.what()).find(
                util::to_string(FaultSite::d2h_transfer)),
            std::string::npos);
}

TEST(FaultPlan, SiteNamesAreDistinct) {
  for (int s = 0; s < util::kFaultSiteCount; ++s)
    for (int t = s + 1; t < util::kFaultSiteCount; ++t)
      EXPECT_STRNE(util::to_string(static_cast<FaultSite>(s)),
                   util::to_string(static_cast<FaultSite>(t)));
}

// ------------------------------------------------------------ hybrid runs

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest()
      : db_(small_db()), grid_(apec::EnergyGrid::wavelength(5.0, 40.0, 48)),
        calc_(db_, grid_, kernel_options()) {}

  static atomic::DatabaseConfig small_db() {
    atomic::DatabaseConfig cfg;
    cfg.max_z = 8;
    cfg.levels = {2, true};
    return cfg;
  }
  static apec::CalcOptions kernel_options() {
    apec::CalcOptions opt;
    opt.integration.adaptive = false;
    return opt;
  }

  static std::vector<apec::GridPoint> points(std::size_t n) {
    std::vector<apec::GridPoint> pts;
    for (std::size_t i = 0; i < n; ++i)
      pts.push_back({0.25 + 0.1 * static_cast<double>(i), 1.0, 0.0, i});
    return pts;
  }

  HybridResult run(ExecutionMode mode, int ranks, int devices,
                   util::FaultPlan* plan = nullptr) {
    HybridConfig cfg;
    cfg.ranks = ranks;
    cfg.devices = devices;
    cfg.mode = mode;
    // Large enough that queue-full never sends a task to QAGS: under faults
    // bit-identity is only defined when every CPU verdict takes the
    // kernel-equivalent degraded path, not the adaptive integrator.
    cfg.max_queue_length = 32;
    cfg.fault_plan = plan;
    HybridDriver driver(calc_, cfg);
    return driver.run(points(3));
  }

  /// Fault-free all-GPU reference: one rank, one device, synchronous. Every
  /// faulty run below must reproduce these spectra bit for bit.
  const HybridResult& reference() {
    if (!ref_) ref_.emplace(run(ExecutionMode::synchronous, 1, 1));
    return *ref_;
  }

  static void expect_bit_identical(const HybridResult& a,
                                   const HybridResult& b) {
    ASSERT_EQ(a.spectra.size(), b.spectra.size());
    for (std::size_t p = 0; p < a.spectra.size(); ++p)
      for (std::size_t bin = 0; bin < a.spectra[p].bin_count(); ++bin)
        ASSERT_EQ(a.spectra[p][bin], b.spectra[p][bin])
            << "point " << p << " bin " << bin;
  }

  /// The exactly-once ledger (invariants documented on FaultStats).
  static void expect_ledger_balances(const HybridResult& r) {
    EXPECT_EQ(r.faults.injected, r.faults.retried);
    EXPECT_LE(r.faults.requeued, r.faults.retried);
    EXPECT_LE(r.faults.retried, r.faults.requeued + r.faults.cpu_fallbacks);
    EXPECT_EQ(r.faults.gpu_completed + r.faults.cpu_completed,
              static_cast<std::int64_t>(r.tasks_total));
  }

  atomic::AtomicDatabase db_;
  apec::EnergyGrid grid_;
  apec::SpectrumCalculator calc_;

 private:
  std::optional<HybridResult> ref_;
};

TEST_F(FaultInjectionTest, ZeroRatePlanIsInert) {
  // Installing a plan arms the recovery layer; with no faults it must change
  // nothing: no injections, no retries, all devices healthy, spectra exact.
  FaultPlan plan(FaultPlanConfig{});
  const HybridResult res = run(ExecutionMode::synchronous, 4, 2, &plan);
  expect_bit_identical(reference(), res);
  EXPECT_EQ(res.faults.injected, 0);
  EXPECT_EQ(res.faults.retried, 0);
  EXPECT_EQ(res.faults.quarantines, 0);
  expect_ledger_balances(res);
  ASSERT_EQ(res.device_health.size(), 2u);
  for (DeviceHealth h : res.device_health)
    EXPECT_EQ(h, DeviceHealth::healthy);
  EXPECT_GT(plan.stats().queries, 0);
}

TEST_F(FaultInjectionTest, TransferFaultsRecoverBitIdentically) {
  FaultPlanConfig cfg;
  cfg.seed = 7;
  cfg.transfer_fault_rate = 0.2;
  FaultPlan plan(cfg);
  const HybridResult res = run(ExecutionMode::synchronous, 4, 2, &plan);
  EXPECT_GT(res.faults.injected, 0);
  expect_bit_identical(reference(), res);
  expect_ledger_balances(res);
}

TEST_F(FaultInjectionTest, KernelFaultsRecoverBitIdenticallySync) {
  FaultPlanConfig cfg;
  cfg.seed = 11;
  cfg.kernel_fault_rate = 0.15;
  FaultPlan plan(cfg);
  const HybridResult res = run(ExecutionMode::synchronous, 4, 2, &plan);
  EXPECT_GT(res.faults.injected, 0);
  expect_bit_identical(reference(), res);
  expect_ledger_balances(res);
}

TEST_F(FaultInjectionTest, KernelFaultsRecoverBitIdenticallyPipelined) {
  FaultPlanConfig cfg;
  cfg.seed = 11;
  cfg.kernel_fault_rate = 0.15;
  FaultPlan plan(cfg);
  const HybridResult res = run(ExecutionMode::pipelined, 4, 2, &plan);
  EXPECT_GT(res.faults.injected, 0);
  expect_bit_identical(reference(), res);
  expect_ledger_balances(res);
}

TEST_F(FaultInjectionTest, KernelTimeoutsChargeTimeButNotResults) {
  FaultPlanConfig cfg;
  cfg.seed = 13;
  cfg.kernel_timeout_rate = 0.15;
  FaultPlan plan(cfg);
  const HybridResult res = run(ExecutionMode::synchronous, 4, 2, &plan);
  EXPECT_GT(res.faults.injected, 0);
  expect_bit_identical(reference(), res);
  expect_ledger_balances(res);
  // The watchdog kills the kernel after it burned virtual time: the faulty
  // run's devices spent longer than the reference's single device.
  double faulty_kernel_s = 0.0;
  for (const auto& st : res.device_stats) faulty_kernel_s += st.kernel_time_s;
  EXPECT_GT(faulty_kernel_s, reference().device_stats[0].kernel_time_s);
}

TEST_F(FaultInjectionTest, StreamStallsRecoverBitIdenticallyPipelined) {
  FaultPlanConfig cfg;
  cfg.seed = 17;
  cfg.stream_stall_rate = 0.15;
  FaultPlan plan(cfg);
  const HybridResult res = run(ExecutionMode::pipelined, 4, 2, &plan);
  EXPECT_GT(res.faults.injected, 0);
  expect_bit_identical(reference(), res);
  expect_ledger_balances(res);
}

TEST_F(FaultInjectionTest, StreamStallsNeverFireInSynchronousMode) {
  // The synchronous driver uses no streams, so a stall-only plan must stay
  // silent: same spectra, zero injections.
  FaultPlanConfig cfg;
  cfg.seed = 17;
  cfg.stream_stall_rate = 0.5;
  FaultPlan plan(cfg);
  const HybridResult res = run(ExecutionMode::synchronous, 4, 2, &plan);
  EXPECT_EQ(res.faults.injected, 0);
  EXPECT_EQ(res.faults.retried, 0);
  expect_bit_identical(reference(), res);
  expect_ledger_balances(res);
}

TEST_F(FaultInjectionTest, AllocFaultsRecoverBitIdentically) {
  FaultPlanConfig cfg;
  cfg.seed = 19;
  cfg.alloc_fault_rate = 0.2;
  FaultPlan plan(cfg);
  for (ExecutionMode mode :
       {ExecutionMode::synchronous, ExecutionMode::pipelined}) {
    const HybridResult res = run(mode, 4, 2, &plan);
    EXPECT_GT(res.faults.injected, 0);
    expect_bit_identical(reference(), res);
    expect_ledger_balances(res);
  }
}

TEST_F(FaultInjectionTest, DeviceDeathQuarantinesAndDegradesGracefully) {
  for (ExecutionMode mode :
       {ExecutionMode::synchronous, ExecutionMode::pipelined}) {
    FaultPlanConfig cfg;
    cfg.seed = 23;
    cfg.dead_device = 0;
    cfg.dies_after_ops = 40;  // dies mid-run, after real work landed on it
    FaultPlan plan(cfg);
    const HybridResult res = run(mode, 4, 2, &plan);
    expect_bit_identical(reference(), res);
    expect_ledger_balances(res);
    EXPECT_GT(res.faults.injected, 0);
    EXPECT_EQ(res.faults.device_deaths, 1);
    EXPECT_GE(res.faults.quarantines, 1);
    ASSERT_EQ(res.device_health.size(), 2u);
    EXPECT_EQ(res.device_health[0], DeviceHealth::quarantined);
    EXPECT_EQ(res.device_health[1], DeviceHealth::healthy);
    // The surviving device kept (or picked up) real work.
    EXPECT_GT(res.history[1], 0);
  }
}

TEST_F(FaultInjectionTest, SingleDeviceDeathDrainsEverythingToTheHost) {
  // With the only device dead, every remaining task must take the
  // kernel-equivalent degraded path — still bit-identical, never QAGS.
  FaultPlanConfig cfg;
  cfg.seed = 29;
  cfg.dead_device = 0;
  cfg.dies_after_ops = 10;
  FaultPlan plan(cfg);
  const HybridResult res = run(ExecutionMode::synchronous, 2, 1, &plan);
  expect_bit_identical(reference(), res);
  expect_ledger_balances(res);
  EXPECT_EQ(res.faults.device_deaths, 1);
  ASSERT_EQ(res.device_health.size(), 1u);
  EXPECT_EQ(res.device_health[0], DeviceHealth::quarantined);
  EXPECT_GT(res.faults.cpu_fallbacks, 0);
  EXPECT_GT(res.faults.cpu_completed, 0);
}

TEST_F(FaultInjectionTest, MixedFaultsAtTwentyPercentStayExact) {
  // Everything at once at the acceptance-bar rate, both modes. The plan's
  // counters are cumulative but the driver reports per-run deltas, so one
  // plan can serve both runs.
  FaultPlanConfig cfg;
  cfg.seed = 31;
  cfg.transfer_fault_rate = 0.2;
  cfg.kernel_fault_rate = 0.2;
  cfg.kernel_timeout_rate = 0.2;
  cfg.stream_stall_rate = 0.2;
  cfg.alloc_fault_rate = 0.2;
  FaultPlan plan(cfg);
  for (ExecutionMode mode :
       {ExecutionMode::synchronous, ExecutionMode::pipelined}) {
    const HybridResult res = run(mode, 4, 2, &plan);
    EXPECT_GT(res.faults.injected, 0);
    expect_bit_identical(reference(), res);
    expect_ledger_balances(res);
  }
}

}  // namespace
