// Tests for asynchronous streams/events on the virtual GPU and the
// asynchronous + Hyper-Q modes of the discrete-event simulator.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/hybrid_sim.h"
#include "vgpu/buffer_pool.h"
#include "vgpu/reduce_kernel.h"
#include "vgpu/stream.h"

namespace {

using namespace hspec;
using namespace hspec::vgpu;

WorkEstimate one_ms_kernel() {
  // 1 ms of compute at C2075 effective rate, minus launch overhead noise.
  WorkEstimate w;
  w.flops = 1e-3 * 515e9 * 0.25;
  return w;
}

TEST(Stream, FifoWithinOneStream) {
  Device dev(tesla_c2075(), 0);
  StreamScheduler sched(dev);
  Stream s(sched, dev);
  s.launch_async({1, 1, 1}, {1, 1, 1}, one_ms_kernel(), [](const KernelCtx&) {});
  const double t1 = s.synchronize();
  s.launch_async({1, 1, 1}, {1, 1, 1}, one_ms_kernel(), [](const KernelCtx&) {});
  const double t2 = s.synchronize();
  EXPECT_GT(t1, 1e-3);
  EXPECT_NEAR(t2, 2.0 * t1, 1e-9);
}

TEST(Stream, FermiSerializesAcrossStreams) {
  Device dev(tesla_c2075(), 0);  // max_concurrent_kernels == 1
  StreamScheduler sched(dev);
  Stream a(sched, dev);
  Stream b(sched, dev);
  a.launch_async({1, 1, 1}, {1, 1, 1}, one_ms_kernel(), [](const KernelCtx&) {});
  b.launch_async({1, 1, 1}, {1, 1, 1}, one_ms_kernel(), [](const KernelCtx&) {});
  // The second stream's kernel queues behind the first one.
  EXPECT_NEAR(sched.device_sync_time(), a.synchronize() * 2.0, 1e-9);
  EXPECT_NEAR(b.synchronize(), 2.0 * a.synchronize(), 1e-9);
}

TEST(Stream, KeplerOverlapsAcrossStreams) {
  Device dev(tesla_k20(), 0);  // Hyper-Q: 32 concurrent
  StreamScheduler sched(dev);
  Stream a(sched, dev);
  Stream b(sched, dev);
  a.launch_async({1, 1, 1}, {1, 1, 1}, one_ms_kernel(), [](const KernelCtx&) {});
  b.launch_async({1, 1, 1}, {1, 1, 1}, one_ms_kernel(), [](const KernelCtx&) {});
  // Full overlap: both streams complete at the solo duration.
  EXPECT_NEAR(b.synchronize(), a.synchronize(), 1e-12);
  EXPECT_NEAR(sched.device_sync_time(), a.synchronize(), 1e-12);
}

TEST(Stream, CopyEnginesPerDirectionOverlap) {
  Device dev(tesla_c2075(), 0);
  StreamScheduler sched(dev);
  Stream a(sched, dev);
  Stream b(sched, dev);
  std::vector<double> host(1'000'000);
  DeviceBuffer buf_a = dev.alloc(host.size() * sizeof(double));
  DeviceBuffer buf_b = dev.alloc(host.size() * sizeof(double));
  // H2D on one stream, D2H on the other: different engines, full overlap.
  a.copy_to_device_async(buf_a, host.data(), host.size() * sizeof(double));
  b.copy_to_host_async(host.data(), buf_b, host.size() * sizeof(double));
  EXPECT_NEAR(a.synchronize(), b.synchronize(), 1e-12);
  // Two H2D copies on different streams serialize on the one engine.
  Stream c(sched, dev);
  Stream d(sched, dev);
  c.copy_to_device_async(buf_a, host.data(), host.size() * sizeof(double));
  d.copy_to_device_async(buf_b, host.data(), host.size() * sizeof(double));
  EXPECT_GT(d.synchronize(), 1.5 * a.synchronize());
}

TEST(Stream, EventsCreateCrossStreamDependencies) {
  Device dev(tesla_k20(), 0);
  StreamScheduler sched(dev);
  Stream producer(sched, dev);
  Stream consumer(sched, dev);
  producer.launch_async({1, 1, 1}, {1, 1, 1}, one_ms_kernel(),
                        [](const KernelCtx&) {});
  const Event done = producer.record();
  consumer.wait(done);
  consumer.launch_async({1, 1, 1}, {1, 1, 1}, one_ms_kernel(),
                        [](const KernelCtx&) {});
  // Despite Hyper-Q, the consumer kernel starts after the producer's.
  EXPECT_NEAR(consumer.synchronize(), 2.0 * producer.synchronize(), 1e-9);
}

TEST(Stream, KernelsStillExecuteForReal) {
  Device dev(tesla_c2075(), 0);
  StreamScheduler sched(dev);
  Stream s(sched, dev);
  int counter = 0;
  s.launch_async({2, 1, 1}, {3, 1, 1}, {}, [&](const KernelCtx&) { ++counter; });
  EXPECT_EQ(counter, 6);
}

TEST(Stream, RejectsForeignScheduler) {
  Device dev_a(tesla_c2075(), 0);
  Device dev_b(tesla_c2075(), 1);
  StreamScheduler sched_a(dev_a);
  EXPECT_THROW(Stream(sched_a, dev_b), std::invalid_argument);
}

// ----------------------------------------------- DES async / Hyper-Q modes

sim::HybridSimConfig base_config() {
  sim::HybridSimConfig c;
  c.ranks = 8;
  c.devices = 1;
  c.max_queue_length = 8;
  c.total_tasks = 400;
  c.prep_s = 0.01;
  c.cpu_task_s = 0.5;
  c.gpu_task_s = 0.05;  // expensive GPU tasks: blocking hurts
  c.jitter = 0.0;
  return c;
}

TEST(AsyncSim, ConservesTasksAndBeatsSyncOnExpensiveTasks) {
  auto cfg = base_config();
  const auto sync = sim::simulate_hybrid(cfg);
  cfg.asynchronous = true;
  const auto async = sim::simulate_hybrid(cfg);
  EXPECT_EQ(async.tasks_gpu + async.tasks_cpu, cfg.total_tasks);
  EXPECT_LT(async.makespan_s, sync.makespan_s);
}

TEST(AsyncSim, QueueBoundStillRespected) {
  auto cfg = base_config();
  cfg.asynchronous = true;
  const auto res = sim::simulate_hybrid(cfg);
  // Residency vector is sized by the bound; nothing above it is recorded.
  EXPECT_EQ(res.load0_residency_s.size(),
            static_cast<std::size_t>(cfg.max_queue_length) + 1);
  double total = 0.0;
  for (double t : res.load0_residency_s) total += t;
  EXPECT_NEAR(total, res.makespan_s, 1e-6 * res.makespan_s);
}

TEST(HyperQSim, ConcurrencyShortensMakespanWhenQueueBound) {
  auto cfg = base_config();
  cfg.ranks = 24;
  cfg.total_tasks = 2000;
  const auto fermi = sim::simulate_hybrid(cfg);
  cfg.concurrent_kernels = 32;
  const auto kepler = sim::simulate_hybrid(cfg);
  EXPECT_LT(kepler.makespan_s, fermi.makespan_s);
  EXPECT_EQ(kepler.tasks_gpu + kepler.tasks_cpu, cfg.total_tasks);
}

TEST(HyperQSim, SingleKernelUnaffectedByConcurrency) {
  auto cfg = base_config();
  cfg.ranks = 1;
  cfg.total_tasks = 5;
  const auto one = sim::simulate_hybrid(cfg);
  cfg.concurrent_kernels = 32;
  const auto many = sim::simulate_hybrid(cfg);
  EXPECT_DOUBLE_EQ(one.makespan_s, many.makespan_s);
}

TEST(HyperQSim, ValidatesConcurrency) {
  auto cfg = base_config();
  cfg.concurrent_kernels = 0;
  EXPECT_THROW(sim::simulate_hybrid(cfg), std::invalid_argument);
}

// ------------------------------------------------------- buffer pool / reduce

TEST(BufferPool, ReusesReleasedBuffers) {
  Device dev(tesla_c2075(), 0);
  BufferPool pool(dev);
  DeviceBuffer a = pool.acquire(1000);
  const void* ptr = a.device_ptr();
  pool.release(std::move(a));
  DeviceBuffer b = pool.acquire(900);  // smaller fits the pooled buffer
  EXPECT_EQ(b.device_ptr(), ptr);
  const auto st = pool.stats();
  EXPECT_EQ(st.acquisitions, 2u);
  EXPECT_EQ(st.reuses, 1u);
  EXPECT_EQ(st.allocations, 1u);
}

TEST(BufferPool, PicksSmallestAdequateBuffer) {
  Device dev(tesla_c2075(), 0);
  BufferPool pool(dev);
  DeviceBuffer big = pool.acquire(10'000);
  DeviceBuffer small = pool.acquire(100);
  const void* small_ptr = small.device_ptr();
  pool.release(std::move(big));
  pool.release(std::move(small));
  DeviceBuffer again = pool.acquire(50);
  EXPECT_EQ(again.device_ptr(), small_ptr);
}

TEST(BufferPool, TrimReturnsMemoryToTheDevice) {
  Device dev(tesla_c2075(), 0);
  BufferPool pool(dev);
  pool.release(pool.acquire(4096));
  EXPECT_GT(dev.bytes_allocated(), 0u);
  pool.trim();
  EXPECT_EQ(dev.bytes_allocated(), 0u);
  pool.release(DeviceBuffer());  // invalid buffers are ignored
}

TEST(BufferPool, SteadyStateNeverAllocates) {
  Device dev(tesla_c2075(), 0);
  BufferPool pool(dev);
  for (int iter = 0; iter < 50; ++iter) {
    PooledBuffer lease(pool, 2048);
    EXPECT_TRUE(lease.get().valid());
  }
  const auto st = pool.stats();
  EXPECT_EQ(st.allocations, 1u);
  EXPECT_EQ(st.reuses, 49u);
}

TEST(ReduceKernel, SumsExactly) {
  Device dev(tesla_c2075(), 0);
  const std::size_t n = 1009;  // prime: exercises ragged strides
  std::vector<double> host(n);
  double expected = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    host[i] = 0.5 + static_cast<double>(i % 17);
    expected += host[i];
  }
  DeviceBuffer data = dev.alloc(n * sizeof(double));
  dev.copy_to_device(data, host.data(), n * sizeof(double));
  EXPECT_NEAR(gpu_reduce_sum(dev, data, n), expected, 1e-9 * expected);
  // The scalar comes home over PCIe, not the array.
  EXPECT_EQ(dev.stats().bytes_d2h, sizeof(double));
}

TEST(ReduceKernel, SmallAndEmptyInputs) {
  Device dev(tesla_c2075(), 0);
  EXPECT_DOUBLE_EQ(gpu_reduce_sum(dev, DeviceBuffer(), 0), 0.0);
  std::vector<double> one{42.0};
  DeviceBuffer data = dev.alloc(sizeof(double));
  dev.copy_to_device(data, one.data(), sizeof(double));
  EXPECT_DOUBLE_EQ(gpu_reduce_sum(dev, data, 1), 42.0);
  EXPECT_THROW(gpu_reduce_sum(dev, data, 2), std::out_of_range);
  EXPECT_THROW(gpu_reduce_sum(dev, data, 1, 0), std::invalid_argument);
}

}  // namespace
