// Bitwise-identity contract of the batched integration path, plus the
// ScratchArena allocation semantics it leans on.
//
// The batched kernels (record / evaluate / replay, quad/batch.h) promise
// output bytes identical to the scalar oracle for every kernel method, every
// entry point (device, stream, host/degraded), accumulate mode, and the
// lower-cutoff clamp — a promise strong enough that flipping
// IntegrationPolicy::batch must not change a single spectrum bit. These
// tests pin that promise with memcmp, never EXPECT_NEAR.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "apec/calculator.h"
#include "apec/parameter_space.h"
#include "apec/spectrum.h"
#include "atomic/database.h"
#include "core/cpu_task_executor.h"
#include "core/gpu_task_executor.h"
#include "core/hybrid.h"
#include "quad/batch.h"
#include "quad/integrate.h"
#include "rrc/rrc.h"
#include "rrc/rrc_batch.h"
#include "vgpu/arena.h"
#include "vgpu/buffer_pool.h"
#include "vgpu/device.h"
#include "vgpu/integr_kernel.h"
#include "vgpu/stream.h"

namespace {

using namespace hspec;
using namespace hspec::vgpu;

// Every kernel-eligible method, with a param typical for it. The batched
// path must be bit-identical under all of them, not just the paper default.
struct MethodCase {
  quad::KernelMethod method;
  std::size_t param;
};

const MethodCase kAllMethods[] = {
    {quad::KernelMethod::simpson, quad::kPaperSimpsonPanels},
    {quad::KernelMethod::trapezoid, 32},
    {quad::KernelMethod::romberg, 6},
    {quad::KernelMethod::gauss, 12},
};

void expect_bitwise_equal(std::span<const double> a, std::span<const double> b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
        << what << ": element " << i << " differs: " << a[i] << " vs " << b[i];
}

// The production integrand pair: the scalar RRC rate and its batched
// structure-of-arrays twin, which share every transcendental (util/fastmath)
// and every association choice by construction.
struct RrcPair {
  RrcPair() {
    ch.recombining_charge = 8;
    ch.level.n = 1;
    ch.level.binding_keV = 0.871;  // O VIII K-shell
    ch.gaunt_correction = true;
    plasma = rrc::PlasmaState{util::KeV{1.0}, util::PerCm3{1.0},
                              util::PerCm3{1.0}};
  }
  double scalar(double e) const {
    return rrc::rrc_power_density(ch, plasma, util::KeV{e}).value();
  }
  rrc::RrcChannel ch;
  rrc::PlasmaState plasma;
};

// Energy-non-uniform edges (wavelength-uniform grids land this shape).
std::vector<double> geometric_edges(double lo, double hi, std::size_t bins) {
  std::vector<double> edges(bins + 1);
  const double r = std::pow(hi / lo, 1.0 / static_cast<double>(bins));
  edges[0] = lo;
  for (std::size_t i = 1; i < bins; ++i) edges[i] = edges[i - 1] * r;
  edges[bins] = hi;
  return edges;
}

// ------------------------------------------------------------- ScratchArena

TEST(ScratchArena, BumpAllocationTracksStats) {
  ScratchArena arena(64);
  const auto a = arena.alloc(16);
  const auto b = arena.alloc(16);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_NE(a.data(), b.data());
  const auto s = arena.stats();
  EXPECT_EQ(s.used_doubles, 32u);
  EXPECT_EQ(s.allocations, 2u);
  EXPECT_EQ(s.growths, 1u);  // lazy first block only; both allocs fit it
  EXPECT_GE(s.capacity_doubles, 64u);
}

TEST(ScratchArena, ResetKeepsCapacityAndZeroesUse) {
  ScratchArena arena(32);
  arena.alloc(32);
  arena.alloc(100);  // forces a growth
  const auto before = arena.stats();
  arena.reset();
  const auto after = arena.stats();
  EXPECT_EQ(after.capacity_doubles, before.capacity_doubles);
  EXPECT_EQ(after.blocks, before.blocks);
  EXPECT_EQ(after.used_doubles, 0u);
  EXPECT_EQ(after.resets, 1u);
  // Warm arena: the same demand is served with zero further growth.
  arena.alloc(32);
  arena.alloc(100);
  EXPECT_EQ(arena.stats().growths, before.growths);
}

TEST(ScratchArena, GrowthKeepsPreviousSpansValid) {
  ScratchArena arena(8);
  auto first = arena.alloc(8);
  for (std::size_t i = 0; i < first.size(); ++i)
    first[i] = static_cast<double>(i) + 0.5;
  auto big = arena.alloc(4096);  // cannot fit: appends a block
  big[0] = -1.0;
  EXPECT_GE(arena.stats().growths, 1u);
  EXPECT_GE(arena.stats().blocks, 2u);
  // Existing blocks never move, so the first span still reads back intact.
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(first[i], static_cast<double>(i) + 0.5);
}

TEST(ScratchArena, AllocZeroThrows) {
  ScratchArena arena;
  EXPECT_THROW(arena.alloc(0), std::invalid_argument);
}

TEST(ScratchArena, ArenasAreIndependent) {
  ScratchArena a(16);
  ScratchArena b(16);
  const auto sa = a.alloc(8);
  const auto sb = b.alloc(8);
  EXPECT_NE(sa.data(), sb.data());
  a.reset();
  EXPECT_EQ(a.stats().resets, 1u);
  EXPECT_EQ(b.stats().resets, 0u);
  EXPECT_EQ(b.stats().used_doubles, 8u);
}

// -------------------------------------------- record / evaluate / replay core

TEST(BatchRules, CombineReplaysIntegrateBitwiseAllMethods) {
  const RrcPair rrc;
  const double a = 0.9, b = 1.7;
  for (const auto& mc : kAllMethods) {
    const std::size_t evals = quad::kernel_cost_evals(mc.method, mc.param);
    std::vector<double> xs(evals), ys(evals);
    quad::kernel_abscissae(mc.method, mc.param, a, b, xs);
    for (std::size_t i = 0; i < evals; ++i) ys[i] = rrc.scalar(xs[i]);
    const auto direct = quad::kernel_integrate(
        mc.method, mc.param, [&](double e) { return rrc.scalar(e); }, a, b);
    const auto replayed = quad::kernel_combine(mc.method, mc.param, a, b, ys);
    EXPECT_EQ(std::memcmp(&direct.value, &replayed.value, sizeof(double)), 0)
        << to_string(mc.method);
    EXPECT_EQ(std::memcmp(&direct.error, &replayed.error, sizeof(double)), 0)
        << to_string(mc.method);
    EXPECT_EQ(direct.evaluations, replayed.evaluations) << to_string(mc.method);
  }
}

// ------------------------------------------------- kernel entry point parity

class BatchKernelIdentity : public ::testing::Test {
 protected:
  BatchKernelIdentity() : dev_(tesla_c2075(), 0) {}

  // Runs scalar and batched gpu_integr_edges_device over the same edges and
  // config; returns both emissivity arrays.
  std::pair<std::vector<double>, std::vector<double>> run_edges_device(
      std::span<const double> edges, const IntegrLaunchConfig& cfg) {
    const std::size_t bins = edges.size() - 1;
    DeviceBuffer edges_dev = dev_.alloc(edges.size() * sizeof(double));
    dev_.copy_to_device(edges_dev, edges.data(), edges.size() * sizeof(double));
    DeviceBuffer emi = dev_.alloc(bins * sizeof(double));

    std::vector<double> scalar_out(bins), batch_out(bins);
    auto f = [&](double e) { return rrc_.scalar(e); };
    gpu_integr_edges_device(dev_, edges_dev, bins, f, emi, cfg);
    dev_.copy_to_host(scalar_out.data(), emi, bins * sizeof(double));

    const rrc::RrcBatchIntegrand bf(rrc_.ch, rrc_.plasma);
    arena_.reset();
    gpu_integr_edges_device(dev_, edges_dev, bins, bf, emi, arena_, cfg);
    dev_.copy_to_host(batch_out.data(), emi, bins * sizeof(double));
    return {std::move(scalar_out), std::move(batch_out)};
  }

  Device dev_;
  RrcPair rrc_;
  ScratchArena arena_;
};

TEST_F(BatchKernelIdentity, EdgesDeviceAllMethods) {
  // 600 bins crosses several grid-stride thread runs, so per-thread batch
  // chunking differs from bin order — identity must not care.
  const auto edges = geometric_edges(0.2, 10.0, 600);
  for (const auto& mc : kAllMethods) {
    IntegrLaunchConfig cfg;
    cfg.method = mc.method;
    cfg.method_param = mc.param;
    cfg.lower_cutoff = rrc_.ch.level.binding_keV;
    const auto [scalar_out, batch_out] = run_edges_device(edges, cfg);
    expect_bitwise_equal(scalar_out, batch_out, to_string(mc.method).c_str());
  }
}

TEST_F(BatchKernelIdentity, ScalarBatchAdapterIsTriviallyIdentical) {
  // The adapter loops the scalar integrand, so identity holds for ANY
  // integrand — here one with no handwritten batch form.
  const auto edges = geometric_edges(0.5, 4.0, 97);
  auto f = [](double x) { return std::exp(-x) * std::sin(3.0 * x) + 2.0; };
  const std::size_t bins = edges.size() - 1;
  DeviceBuffer edges_dev = dev_.alloc(edges.size() * sizeof(double));
  dev_.copy_to_device(edges_dev, edges.data(), edges.size() * sizeof(double));
  DeviceBuffer emi = dev_.alloc(bins * sizeof(double));
  IntegrLaunchConfig cfg;

  std::vector<double> scalar_out(bins), batch_out(bins);
  gpu_integr_edges_device(dev_, edges_dev, bins, f, emi, cfg);
  dev_.copy_to_host(scalar_out.data(), emi, bins * sizeof(double));
  const quad::ScalarBatchAdapter adapter{quad::Integrand(f)};
  gpu_integr_edges_device(dev_, edges_dev, bins, adapter, emi, arena_, cfg);
  dev_.copy_to_host(batch_out.data(), emi, bins * sizeof(double));
  expect_bitwise_equal(scalar_out, batch_out, "adapter");
}

TEST_F(BatchKernelIdentity, UniformBinsDevice) {
  const std::size_t bins = 333;
  DeviceBuffer emi = dev_.alloc(bins * sizeof(double));
  IntegrLaunchConfig cfg;
  cfg.lower_cutoff = rrc_.ch.level.binding_keV;

  std::vector<double> scalar_out(bins), batch_out(bins);
  auto f = [&](double e) { return rrc_.scalar(e); };
  gpu_integr_device(dev_, 0.3, 9.0, bins, f, emi, cfg);
  dev_.copy_to_host(scalar_out.data(), emi, bins * sizeof(double));
  const rrc::RrcBatchIntegrand bf(rrc_.ch, rrc_.plasma);
  gpu_integr_device(dev_, 0.3, 9.0, bins, bf, emi, arena_, cfg);
  dev_.copy_to_host(batch_out.data(), emi, bins * sizeof(double));
  expect_bitwise_equal(scalar_out, batch_out, "uniform bins");
}

TEST_F(BatchKernelIdentity, AccumulateModeAcrossLaunches) {
  // Two accumulate launches model two energy levels of one ion task; the
  // += order must match between paths, so the sums stay bitwise equal.
  const auto edges = geometric_edges(0.2, 10.0, 128);
  const std::size_t bins = edges.size() - 1;
  DeviceBuffer edges_dev = dev_.alloc(edges.size() * sizeof(double));
  dev_.copy_to_device(edges_dev, edges.data(), edges.size() * sizeof(double));
  DeviceBuffer emi = dev_.alloc(bins * sizeof(double));
  IntegrLaunchConfig cfg;
  cfg.accumulate = true;
  cfg.lower_cutoff = rrc_.ch.level.binding_keV;
  auto f = [&](double e) { return rrc_.scalar(e); };
  const rrc::RrcBatchIntegrand bf(rrc_.ch, rrc_.plasma);

  std::vector<double> scalar_out(bins), batch_out(bins);
  dev_.memset_device(emi, 0, bins * sizeof(double));
  gpu_integr_edges_device(dev_, edges_dev, bins, f, emi, cfg);
  gpu_integr_edges_device(dev_, edges_dev, bins, f, emi, cfg);
  dev_.copy_to_host(scalar_out.data(), emi, bins * sizeof(double));

  dev_.memset_device(emi, 0, bins * sizeof(double));
  gpu_integr_edges_device(dev_, edges_dev, bins, bf, emi, arena_, cfg);
  gpu_integr_edges_device(dev_, edges_dev, bins, bf, emi, arena_, cfg);
  dev_.copy_to_host(batch_out.data(), emi, bins * sizeof(double));
  expect_bitwise_equal(scalar_out, batch_out, "accumulate");
}

TEST_F(BatchKernelIdentity, CutoffClampMatchesPerBinRule) {
  // The cutoff lands mid-grid: some bins are dead, one straddles. Both
  // paths must zero the dead bins and clamp the straddler identically.
  const auto edges = geometric_edges(0.2, 10.0, 64);
  IntegrLaunchConfig cfg;
  cfg.lower_cutoff = 1.3;
  const auto [scalar_out, batch_out] = run_edges_device(edges, cfg);
  expect_bitwise_equal(scalar_out, batch_out, "cutoff");

  auto f = [&](double e) { return rrc_.scalar(e); };
  bool saw_dead = false, saw_straddle = false;
  for (std::size_t b = 0; b + 1 < edges.size(); ++b) {
    if (edges[b + 1] <= cfg.lower_cutoff) {
      EXPECT_EQ(batch_out[b], 0.0) << "bin " << b << " is below the cutoff";
      saw_dead = true;
    } else {
      const double left = std::max(edges[b], cfg.lower_cutoff);
      saw_straddle |= left != edges[b];
      const auto ref = quad::kernel_integrate(cfg.method, cfg.method_param, f,
                                              left, edges[b + 1]);
      EXPECT_EQ(std::memcmp(&batch_out[b], &ref.value, sizeof(double)), 0)
          << "bin " << b;
    }
  }
  EXPECT_TRUE(saw_dead);
  EXPECT_TRUE(saw_straddle);
}

TEST_F(BatchKernelIdentity, StreamBatchMatchesBlockingScalar) {
  const auto edges = geometric_edges(0.2, 10.0, 200);
  const std::size_t bins = edges.size() - 1;
  DeviceBuffer edges_dev = dev_.alloc(edges.size() * sizeof(double));
  dev_.copy_to_device(edges_dev, edges.data(), edges.size() * sizeof(double));
  DeviceBuffer emi = dev_.alloc(bins * sizeof(double));
  IntegrLaunchConfig cfg;
  cfg.lower_cutoff = rrc_.ch.level.binding_keV;

  std::vector<double> scalar_out(bins), batch_out(bins);
  auto f = [&](double e) { return rrc_.scalar(e); };
  gpu_integr_edges_device(dev_, edges_dev, bins, f, emi, cfg);
  dev_.copy_to_host(scalar_out.data(), emi, bins * sizeof(double));

  StreamScheduler sched(dev_);
  Stream stream(sched, dev_);
  const rrc::RrcBatchIntegrand bf(rrc_.ch, rrc_.plasma);
  gpu_integr_edges_stream(stream, edges_dev, bins, bf, emi, arena_, cfg);
  stream.synchronize();
  dev_.copy_to_host(batch_out.data(), emi, bins * sizeof(double));
  expect_bitwise_equal(scalar_out, batch_out, "stream");
}

TEST_F(BatchKernelIdentity, HostDegradedPathMatchesDevice) {
  // 600 bins > the host path's 256-bin chunk, so chunk boundaries are
  // exercised; chunking must be invisible in the bytes.
  const auto edges = geometric_edges(0.2, 10.0, 600);
  const std::size_t bins = edges.size() - 1;
  IntegrLaunchConfig cfg;
  cfg.lower_cutoff = rrc_.ch.level.binding_keV;

  std::vector<double> host_scalar(bins), host_batch(bins);
  auto f = [&](double e) { return rrc_.scalar(e); };
  integr_edges_host(edges, bins, f, host_scalar, cfg);
  const rrc::RrcBatchIntegrand bf(rrc_.ch, rrc_.plasma);
  integr_edges_host(edges, bins, bf, host_batch, arena_, cfg);
  expect_bitwise_equal(host_scalar, host_batch, "host scalar vs host batch");

  const auto [dev_scalar, dev_batch] = run_edges_device(edges, cfg);
  expect_bitwise_equal(host_batch, dev_scalar, "host batch vs device scalar");
  expect_bitwise_equal(host_batch, dev_batch, "host batch vs device batch");
}

TEST_F(BatchKernelIdentity, ConvenienceWrapperLeasesFromDefaultPool) {
  const std::size_t bins = 50;
  std::vector<double> scalar_out(bins), batch_out(bins);
  auto f = [&](double e) { return rrc_.scalar(e); };
  IntegrLaunchConfig cfg;
  cfg.lower_cutoff = rrc_.ch.level.binding_keV;

  gpu_integr(dev_, 0.5, 6.0, f, scalar_out, cfg);
  const auto first = dev_.default_pool().stats();
  const rrc::RrcBatchIntegrand bf(rrc_.ch, rrc_.plasma);
  gpu_integr(dev_, 0.5, 6.0, bf, batch_out, arena_, cfg);
  expect_bitwise_equal(scalar_out, batch_out, "gpu_integr wrapper");
  // Same-size launch immediately after: the emi buffer must come off the
  // pool free list, not a fresh device allocation (satellite regression).
  const auto second = dev_.default_pool().stats();
  EXPECT_GT(second.reuses, first.reuses);
}

TEST_F(BatchKernelIdentity, WarmArenaStopsGrowing) {
  const auto edges = geometric_edges(0.2, 10.0, 300);
  const std::size_t bins = edges.size() - 1;
  std::vector<double> emi(bins);
  const rrc::RrcBatchIntegrand bf(rrc_.ch, rrc_.plasma);
  IntegrLaunchConfig cfg;

  integr_edges_host(edges, bins, bf, emi, arena_, cfg);  // warm-up growth
  const auto warm = arena_.stats();
  for (int rep = 0; rep < 3; ++rep) {
    arena_.reset();
    integr_edges_host(edges, bins, bf, emi, arena_, cfg);
  }
  const auto steady = arena_.stats();
  EXPECT_EQ(steady.growths, warm.growths);  // zero heap traffic after warm-up
  EXPECT_EQ(steady.capacity_doubles, warm.capacity_doubles);
}

// ------------------------------------------------------ policy-level parity

class PolicyBatchTest : public ::testing::Test {
 protected:
  PolicyBatchTest() : db_(small_db()), grid_(apec::EnergyGrid::wavelength(
                                           5.0, 40.0, 48)) {}

  static atomic::DatabaseConfig small_db() {
    atomic::DatabaseConfig cfg;
    cfg.max_z = 8;
    cfg.levels = {2, true};
    return cfg;
  }
  static apec::CalcOptions options(bool batch) {
    apec::CalcOptions opt;
    opt.integration.adaptive = false;
    opt.integration.batch = batch;
    return opt;
  }
  static std::vector<apec::GridPoint> points() {
    return {{0.3, 1.0, 0.0, 0}, {0.8, 1.0, 0.0, 1}};
  }

  core::HybridResult run(bool batch, core::ExecutionMode mode) {
    apec::SpectrumCalculator calc(db_, grid_, options(batch));
    core::HybridConfig cfg;
    cfg.ranks = 2;
    cfg.devices = 1;
    cfg.mode = mode;
    cfg.max_queue_length = 32;  // keep every task off the QAGS path
    core::HybridDriver driver(calc, cfg);
    return driver.run(points());
  }

  atomic::AtomicDatabase db_;
  apec::EnergyGrid grid_;
};

TEST_F(PolicyBatchTest, BatchFlagDoesNotChangeSpectrumBits) {
  const auto scalar_run = run(false, core::ExecutionMode::synchronous);
  const auto batch_sync = run(true, core::ExecutionMode::synchronous);
  const auto batch_pipe = run(true, core::ExecutionMode::pipelined);
  ASSERT_EQ(scalar_run.spectra.size(), batch_sync.spectra.size());
  ASSERT_EQ(scalar_run.spectra.size(), batch_pipe.spectra.size());
  for (std::size_t p = 0; p < scalar_run.spectra.size(); ++p) {
    expect_bitwise_equal(scalar_run.spectra[p].values(),
                         batch_sync.spectra[p].values(), "sync batch on/off");
    expect_bitwise_equal(scalar_run.spectra[p].values(),
                         batch_pipe.spectra[p].values(), "pipelined batch");
  }
}

TEST_F(PolicyBatchTest, DegradedExecutorMatchesGpuExecutorBitwise) {
  // The graceful-degradation path must keep the identity whether or not the
  // policy batches — all four executor/flag combinations, same bytes.
  const apec::GridPoint pt{0.5, 1.0, 0.0, 0};
  const auto pops = apec::solve_populations(db_, pt);
  apec::SpectrumCalculator scalar_calc(db_, grid_, options(false));
  apec::SpectrumCalculator batch_calc(db_, grid_, options(true));
  const auto tasks =
      core::make_tasks(scalar_calc, pt, pops, core::TaskGranularity::ion);
  ASSERT_FALSE(tasks.empty());
  Device dev(tesla_c2075(), 0);

  apec::Spectrum gpu_scalar(grid_), gpu_batch(grid_);
  apec::Spectrum deg_scalar(grid_), deg_batch(grid_);
  for (const auto& task : tasks) {
    core::execute_task_on_gpu(scalar_calc, task, pops, dev, gpu_scalar);
    core::execute_task_on_gpu(batch_calc, task, pops, dev, gpu_batch);
    core::execute_task_degraded(scalar_calc, task, pops, deg_scalar);
    core::execute_task_degraded(batch_calc, task, pops, deg_batch);
  }
  expect_bitwise_equal(gpu_scalar.values(), gpu_batch.values(),
                       "gpu batch on/off");
  expect_bitwise_equal(gpu_scalar.values(), deg_scalar.values(),
                       "gpu vs degraded, scalar");
  expect_bitwise_equal(gpu_scalar.values(), deg_batch.values(),
                       "gpu vs degraded, batched");
}

}  // namespace
