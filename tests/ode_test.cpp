// Tests for the ODE substrate: linear algebra, explicit RK45, implicit BDF,
// and the LSODA-style switching driver.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ode/bdf.h"
#include "ode/linalg.h"
#include "ode/lsoda.h"
#include "ode/rk45.h"
#include "util/rng.h"

namespace {

using namespace hspec::ode;

// ---------------------------------------------------------------------- linalg

TEST(Matrix, IndexingAndMultiply) {
  Matrix m(2, 3);
  m(0, 0) = 1.0;
  m(0, 2) = 2.0;
  m(1, 1) = 3.0;
  const std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y(2);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_THROW(m.multiply(y, y), std::invalid_argument);
  EXPECT_THROW(Matrix(0, 3), std::invalid_argument);
}

TEST(Lu, SolvesKnownSystem) {
  Matrix a(3, 3);
  const double vals[9] = {2, 1, 1, 1, 3, 2, 1, 0, 0};
  for (std::size_t i = 0; i < 9; ++i) a(i / 3, i % 3) = vals[i];
  LuDecomposition lu(std::move(a));
  std::vector<double> b{4, 5, 6};
  lu.solve(b);
  // x = (6, 15, -23): check by substitution.
  EXPECT_NEAR(b[0], 6.0, 1e-12);
  EXPECT_NEAR(b[1], 15.0, 1e-12);
  EXPECT_NEAR(b[2], -23.0, 1e-12);
}

TEST(Lu, RandomSystemsRoundTrip) {
  hspec::util::Xoshiro256 rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.bounded(12);
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        a(r, c) = rng.uniform(-1.0, 1.0) + (r == c ? 3.0 : 0.0);
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.uniform(-5.0, 5.0);
    std::vector<double> b(n);
    a.multiply(x_true, b);
    LuDecomposition lu(std::move(a));
    lu.solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-9);
  }
}

TEST(Lu, DeterminantAndSingularity) {
  Matrix diag(2, 2);
  diag(0, 0) = 3.0;
  diag(1, 1) = -2.0;
  EXPECT_NEAR(LuDecomposition(std::move(diag)).determinant(), -6.0, 1e-12);

  Matrix sing(2, 2);
  sing(0, 0) = 1.0;
  sing(0, 1) = 2.0;
  sing(1, 0) = 2.0;
  sing(1, 1) = 4.0;
  EXPECT_THROW(LuDecomposition{std::move(sing)}, std::runtime_error);

  Matrix rect(2, 3);
  EXPECT_THROW(LuDecomposition{std::move(rect)}, std::invalid_argument);
}

TEST(Tridiagonal, MatchesDenseLu) {
  const std::size_t n = 8;
  std::vector<double> lower(n - 1), diag(n), upper(n - 1), d(n);
  hspec::util::Xoshiro256 rng(5);
  for (auto& v : lower) v = rng.uniform(-1.0, 1.0);
  for (auto& v : upper) v = rng.uniform(-1.0, 1.0);
  for (auto& v : diag) v = rng.uniform(3.0, 5.0);  // diagonally dominant
  for (auto& v : d) v = rng.uniform(-2.0, 2.0);

  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = diag[i];
    if (i + 1 < n) {
      a(i, i + 1) = upper[i];
      a(i + 1, i) = lower[i];
    }
  }
  std::vector<double> dense = d;
  LuDecomposition lu(std::move(a));
  lu.solve(dense);

  std::vector<double> thomas = d;
  solve_tridiagonal(lower, diag, upper, thomas);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(thomas[i], dense[i], 1e-10);
}

TEST(Tridiagonal, ValidatesSizes) {
  std::vector<double> l(2), diag(3), u(2), d(2);
  EXPECT_THROW(solve_tridiagonal(l, diag, u, d), std::invalid_argument);
}

// --------------------------------------------------------------- test systems

struct Decay : OdeSystem {
  std::size_t dimension() const override { return 1; }
  void rhs(double, std::span<const double> y,
           std::span<double> d) const override {
    d[0] = -y[0];
  }
};

/// y'' = -y as a system: y(t) = cos(t), y'(t) = -sin(t).
struct Oscillator : OdeSystem {
  std::size_t dimension() const override { return 2; }
  void rhs(double, std::span<const double> y,
           std::span<double> d) const override {
    d[0] = y[1];
    d[1] = -y[0];
  }
};

/// Prothero-Robinson-style stiff problem: y' = -L (y - cos t) - sin t,
/// exact solution y = cos t (for y0 = 1).
struct StiffPr : OdeSystem {
  double lambda = 1e5;
  std::size_t dimension() const override { return 1; }
  void rhs(double t, std::span<const double> y,
           std::span<double> d) const override {
    d[0] = -lambda * (y[0] - std::cos(t)) - std::sin(t);
  }
  bool has_jacobian() const override { return true; }
  void jacobian(double, std::span<const double>, Matrix& j) const override {
    j(0, 0) = -lambda;
  }
};

// ------------------------------------------------------------------ jacobians

TEST(Jacobian, NumericalMatchesAnalytic) {
  StiffPr sys;
  sys.lambda = 50.0;
  Matrix num(1, 1);
  Matrix ana(1, 1);
  const std::vector<double> y{0.7};
  numerical_jacobian(sys, 0.3, y, num);
  sys.jacobian(0.3, y, ana);
  EXPECT_NEAR(num(0, 0), ana(0, 0), 1e-3 * std::fabs(ana(0, 0)));
}

TEST(Jacobian, UnimplementedThrows) {
  Decay sys;
  Matrix j(1, 1);
  EXPECT_THROW(sys.jacobian(0.0, std::vector<double>{1.0}, j),
               std::logic_error);
  EXPECT_FALSE(sys.has_jacobian());
}

// ----------------------------------------------------------------------- RK45

TEST(Rk45, ExponentialDecayAccuracy) {
  Decay sys;
  std::vector<double> y{1.0};
  const auto st = rk45_integrate(sys, 0.0, 2.0, y, {1e-10, 1e-14});
  EXPECT_NEAR(y[0], std::exp(-2.0), 1e-8);
  EXPECT_GT(st.steps, 0u);
  EXPECT_GT(st.rhs_evaluations, 6 * st.steps);
}

TEST(Rk45, OscillatorEnergyPreservedToTolerance) {
  Oscillator sys;
  std::vector<double> y{1.0, 0.0};
  rk45_integrate(sys, 0.0, 20.0, y, {1e-10, 1e-12});
  EXPECT_NEAR(y[0], std::cos(20.0), 1e-6);
  EXPECT_NEAR(y[1], -std::sin(20.0), 1e-6);
}

TEST(Rk45, TighterToleranceMoreAccurate) {
  Decay sys;
  std::vector<double> loose_y{1.0};
  std::vector<double> tight_y{1.0};
  rk45_integrate(sys, 0.0, 2.0, loose_y, {1e-4, 1e-8});
  rk45_integrate(sys, 0.0, 2.0, tight_y, {1e-10, 1e-14});
  const double exact = std::exp(-2.0);
  EXPECT_LT(std::fabs(tight_y[0] - exact), std::fabs(loose_y[0] - exact));
}

TEST(Rk45, StiffProblemExhaustsBudget) {
  StiffPr sys;
  std::vector<double> y{1.0};
  SolverOptions opt;
  opt.max_steps = 500;
  EXPECT_THROW(rk45_integrate(sys, 0.0, 1.0, y, opt), std::runtime_error);
}

TEST(Rk45, ValidatesArguments) {
  Decay sys;
  std::vector<double> y{1.0, 2.0};
  EXPECT_THROW(rk45_integrate(sys, 0.0, 1.0, y), std::invalid_argument);
  std::vector<double> y1{1.0};
  EXPECT_THROW(rk45_integrate(sys, 1.0, 1.0, y1), std::invalid_argument);
}

// ------------------------------------------------------------------------ BDF

TEST(Bdf, ExponentialDecayAccuracy) {
  Decay sys;
  std::vector<double> y{1.0};
  const auto st = bdf_integrate(sys, 0.0, 2.0, y, {1e-8, 1e-12});
  EXPECT_NEAR(y[0], std::exp(-2.0), 1e-5);
  EXPECT_GT(st.newton_iterations, st.steps);
  EXPECT_GT(st.jacobian_evaluations, 0u);
  EXPECT_TRUE(st.stiff_finish);
}

TEST(Bdf, StiffProblemSolvedInFewSteps) {
  StiffPr sys;
  std::vector<double> y{1.0};
  const auto st = bdf_integrate(sys, 0.0, 1.0, y, {1e-7, 1e-12});
  EXPECT_NEAR(y[0], std::cos(1.0), 1e-4);
  // The whole point of BDF: step count is tolerance-driven, not
  // stability-driven (RK45 would need ~ lambda steps).
  EXPECT_LT(st.steps + st.rejected_steps, 5'000u);
}

TEST(Bdf, UsesAnalyticJacobianWhenAvailable) {
  StiffPr sys;
  std::vector<double> y{1.0};
  const auto st = bdf_integrate(sys, 0.0, 0.5, y, {1e-6, 1e-12});
  EXPECT_GT(st.jacobian_evaluations, 0u);
}

TEST(Bdf, SystemDecayComponentsIndependent) {
  // Two decoupled decays with different rates.
  struct TwoDecay : OdeSystem {
    std::size_t dimension() const override { return 2; }
    void rhs(double, std::span<const double> y,
             std::span<double> d) const override {
      d[0] = -y[0];
      d[1] = -10.0 * y[1];
    }
  } sys;
  std::vector<double> y{1.0, 1.0};
  bdf_integrate(sys, 0.0, 1.0, y, {1e-8, 1e-12});
  EXPECT_NEAR(y[0], std::exp(-1.0), 1e-5);
  EXPECT_NEAR(y[1], std::exp(-10.0), 1e-5);
}

TEST(Bdf, ValidatesArguments) {
  Decay sys;
  std::vector<double> y{1.0};
  EXPECT_THROW(bdf_integrate(sys, 1.0, 0.5, y), std::invalid_argument);
}

// ---------------------------------------------------------------------- LSODA

TEST(Lsoda, StaysExplicitOnEasyProblem) {
  Decay sys;
  std::vector<double> y{1.0};
  const auto st = lsoda_integrate(sys, 0.0, 2.0, y);
  EXPECT_NEAR(y[0], std::exp(-2.0), 1e-6);
  EXPECT_EQ(st.method_switches, 0u);
  EXPECT_FALSE(st.stiff_finish);
  EXPECT_EQ(st.newton_iterations, 0u);  // never touched the implicit path
}

TEST(Lsoda, SwitchesToBdfOnStiffProblem) {
  StiffPr sys;
  std::vector<double> y{1.0};
  const auto st = lsoda_integrate(sys, 0.0, 1.0, y);
  EXPECT_NEAR(y[0], std::cos(1.0), 1e-3);
  EXPECT_GE(st.method_switches, 1u);
  EXPECT_TRUE(st.stiff_finish);
  EXPECT_GT(st.newton_iterations, 0u);
}

TEST(Lsoda, CheaperThanPureExplicitOnStiff) {
  StiffPr sys;
  std::vector<double> y1{1.0};
  const auto auto_st = lsoda_integrate(sys, 0.0, 1.0, y1);
  // Pure RK45 would need ~ lambda * t / 3 ~ 3e4 evaluations just for
  // stability; the switching driver must come in well under that.
  EXPECT_LT(auto_st.rhs_evaluations, 30'000u);
}

TEST(Lsoda, ValidatesArguments) {
  Decay sys;
  std::vector<double> y{1.0};
  EXPECT_THROW(lsoda_integrate(sys, 1.0, 1.0, y), std::invalid_argument);
}

}  // namespace
