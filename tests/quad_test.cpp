// Tests for the numerical-integration substrate: rule correctness,
// convergence orders, adaptive behaviour on singular integrands, and the
// kernel-method registry the GPU path uses.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "quad/integrate.h"
#include "quad/qagp.h"

namespace {

using namespace hspec::quad;

double poly3(double x) { return ((2.0 * x - 1.0) * x + 3.0) * x - 5.0; }
constexpr double kPoly3Integral01 = 2.0 / 4.0 - 1.0 / 3.0 + 3.0 / 2.0 - 5.0;

// ------------------------------------------------------------- Newton-Cotes

TEST(Simpson, ExactForCubics) {
  const auto r = simpson(poly3, 0.0, 1.0, 1);
  EXPECT_NEAR(r.value, kPoly3Integral01, 1e-14);
  EXPECT_EQ(r.evaluations, 3u);
}

TEST(Simpson, FourthOrderConvergence) {
  auto f = [](double x) { return std::exp(x); };
  const double exact = std::exp(1.0) - 1.0;
  const double e8 = std::fabs(simpson(f, 0.0, 1.0, 8).value - exact);
  const double e16 = std::fabs(simpson(f, 0.0, 1.0, 16).value - exact);
  EXPECT_NEAR(e8 / e16, 16.0, 1.5);  // halving h divides error by ~2^4
}

TEST(Simpson, PaperDefaultIs64Panels) {
  EXPECT_EQ(kPaperSimpsonPanels, 64u);
  auto f = [](double x) { return std::sin(x); };
  const auto r = simpson_paper_default(f, 0.0, std::numbers::pi);
  EXPECT_NEAR(r.value, 2.0, 1e-8);
}

TEST(Trapezoid, SecondOrderConvergence) {
  auto f = [](double x) { return std::exp(x); };
  const double exact = std::exp(1.0) - 1.0;
  const double e8 = std::fabs(trapezoid(f, 0.0, 1.0, 8).value - exact);
  const double e16 = std::fabs(trapezoid(f, 0.0, 1.0, 16).value - exact);
  EXPECT_NEAR(e8 / e16, 4.0, 0.5);
}

TEST(Midpoint, ExactForLinear) {
  auto f = [](double x) { return 3.0 * x + 1.0; };
  EXPECT_NEAR(midpoint(f, 0.0, 2.0, 1).value, 8.0, 1e-14);
}

TEST(NewtonCotes, ZeroPanelsThrow) {
  auto f = [](double x) { return x; };
  EXPECT_THROW(simpson(f, 0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(trapezoid(f, 0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(midpoint(f, 0.0, 1.0, 0), std::invalid_argument);
}

TEST(NewtonCotes, ReversedIntervalIsNegated) {
  auto f = [](double x) { return x * x; };
  const double fwd = simpson(f, 0.0, 1.0, 4).value;
  const double rev = simpson(f, 1.0, 0.0, 4).value;
  EXPECT_NEAR(fwd, -rev, 1e-14);
}

// ----------------------------------------------------------------- Romberg

TEST(Romberg, FixedDepthMatchesExactExponential) {
  auto f = [](double x) { return std::exp(-x); };
  const double exact = 1.0 - std::exp(-1.0);
  const auto r = romberg_fixed(f, 0.0, 1.0, 8);
  EXPECT_NEAR(r.value, exact, 1e-12);
  EXPECT_EQ(r.evaluations, (1u << 8) + 1);  // Eq. 3: cost 2^k + 1
}

TEST(Romberg, CostDoublesPerDichotomy) {
  auto f = [](double x) { return x; };
  for (std::size_t k = 3; k <= 10; ++k) {
    const auto r = romberg_fixed(f, 0.0, 1.0, k);
    EXPECT_EQ(r.evaluations, (std::size_t{1} << k) + 1) << "k=" << k;
  }
}

TEST(Romberg, AdaptiveConvergesAndReportsIt) {
  auto f = [](double x) { return 1.0 / (1.0 + x * x); };
  const auto r = romberg(f, 0.0, 1.0, {1e-12, 1e-12});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, std::numbers::pi / 4.0, 1e-11);
}

TEST(Romberg, ReportsNonConvergenceOnHardIntegrand) {
  // |x - 1/pi| has a kink: polynomial extrapolation struggles at depth 4.
  auto f = [](double x) { return std::fabs(x - 1.0 / std::numbers::pi); };
  const auto r = romberg(f, 0.0, 1.0, {1e-14, 1e-14}, 4);
  EXPECT_FALSE(r.converged);
}

// ---------------------------------------------------------- Gauss-Legendre

TEST(GaussLegendre, NodesAreLegendreRoots) {
  for (std::size_t n : {3u, 8u, 16u}) {
    const auto& rule = gauss_legendre_rule(n);
    ASSERT_EQ(rule.nodes.size(), n);
    for (double x : rule.nodes)
      EXPECT_LT(std::fabs(legendre(n, x).p), 1e-12) << "n=" << n << " x=" << x;
  }
}

TEST(GaussLegendre, WeightsPositiveAndSumToTwo) {
  for (std::size_t n : {2u, 5u, 12u, 31u}) {
    const auto& rule = gauss_legendre_rule(n);
    double sum = 0.0;
    for (double w : rule.weights) {
      EXPECT_GT(w, 0.0);
      sum += w;
    }
    EXPECT_NEAR(sum, 2.0, 1e-12) << "n=" << n;
  }
}

class GaussExactness : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GaussExactness, IntegratesDegree2nMinus1Exactly) {
  const std::size_t n = GetParam();
  const auto degree = 2 * n - 1;
  // f(x) = x^degree on [0,1]: integral 1/(degree+1).
  auto f = [&](double x) { return std::pow(x, static_cast<double>(degree)); };
  const auto r = gauss_legendre(f, 0.0, 1.0, n);
  EXPECT_NEAR(r.value, 1.0 / (static_cast<double>(degree) + 1.0), 1e-12)
      << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussExactness,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 12, 16));

TEST(GaussLegendre, ZeroOrderThrows) {
  EXPECT_THROW(gauss_legendre_rule(0), std::invalid_argument);
}

// ----------------------------------------------------------- Gauss-Kronrod

class KronrodRuleTest : public ::testing::TestWithParam<KronrodRule> {};

TEST_P(KronrodRuleTest, WeightsSumToTwo) {
  const KronrodTable t = kronrod_table(GetParam());
  double kron = t.wgk.back();  // center once
  for (std::size_t i = 0; i + 1 < t.wgk.size(); ++i) kron += 2.0 * t.wgk[i];
  EXPECT_NEAR(kron, 2.0, 1e-12);
  double gauss = 0.0;
  const bool odd_gauss = (t.xgk.size() - 1) % 2 == 1;
  for (std::size_t i = 0; i < t.wg.size(); ++i)
    gauss += (odd_gauss && i + 1 == t.wg.size()) ? t.wg[i] : 2.0 * t.wg[i];
  EXPECT_NEAR(gauss, 2.0, 1e-12);
}

TEST_P(KronrodRuleTest, AbscissaeDescendInUnitInterval) {
  const KronrodTable t = kronrod_table(GetParam());
  EXPECT_DOUBLE_EQ(t.xgk.back(), 0.0);
  for (std::size_t i = 0; i + 1 < t.xgk.size(); ++i) {
    EXPECT_GT(t.xgk[i], t.xgk[i + 1]);
    EXPECT_LT(t.xgk[i], 1.0);
  }
}

TEST_P(KronrodRuleTest, ExactOnHighDegreePolynomial) {
  // GK15 exact to degree 22; GK21 to degree 31. Use degree 13 for both.
  auto f = [](double x) { return std::pow(x, 13.0) + x * x; };
  const auto r = gauss_kronrod(f, 0.0, 1.0, GetParam());
  EXPECT_NEAR(r.value, 1.0 / 14.0 + 1.0 / 3.0, 1e-13);
}

TEST_P(KronrodRuleTest, ErrorEstimateBoundsTrueError) {
  auto f = [](double x) { return std::exp(-x * x); };
  const double exact = 0.746824132812427025;  // erf-based, [0,1]
  const KronrodEstimate e = kronrod_apply(f, 0.0, 1.0, GetParam());
  EXPECT_GE(e.error, std::fabs(e.value - exact));
  EXPECT_GT(e.resabs, 0.0);
  EXPECT_GT(e.resasc, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Rules, KronrodRuleTest,
                         ::testing::Values(KronrodRule::k15, KronrodRule::k21));

TEST(Kronrod, EvaluationCounts) {
  std::size_t calls = 0;
  auto f = [&](double x) {
    ++calls;
    return x;
  };
  kronrod_apply(f, 0.0, 1.0, KronrodRule::k15);
  EXPECT_EQ(calls, 15u);
  calls = 0;
  kronrod_apply(f, 0.0, 1.0, KronrodRule::k21);
  EXPECT_EQ(calls, 21u);
}

// ----------------------------------------------------------------- QAGS

TEST(Qags, SmoothIntegrandConvergesImmediately) {
  auto f = [](double x) { return std::cos(x); };
  const auto r = qags(f, 0.0, 1.0, 1e-12, 1e-12);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, std::sin(1.0), 1e-12);
  EXPECT_EQ(r.evaluations, 21u);  // single GK21 application suffices
}

TEST(Qags, InverseSqrtSingularity) {
  auto f = [](double x) { return 1.0 / std::sqrt(x > 0.0 ? x : 1e-300); };
  const auto r = qags(f, 0.0, 1.0, 1e-10, 1e-10);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, 2.0, 1e-8);
}

TEST(Qags, LogSingularity) {
  auto f = [](double x) { return std::log(x > 0.0 ? x : 1e-300); };
  const auto r = qags(f, 0.0, 1.0, 1e-10, 1e-10);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, -1.0, 1e-8);
}

TEST(Qags, StepDiscontinuityLikeRrcEdge) {
  // The RRC integrand shape: zero below the edge, exponential above.
  const double edge = 0.3333;
  auto f = [&](double x) { return x < edge ? 0.0 : std::exp(-(x - edge)); };
  const double exact = 1.0 - std::exp(-(1.0 - edge));
  const auto r = qags(f, 0.0, 1.0, 1e-10, 1e-10);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, exact, 1e-9);
}

TEST(Qags, EmptyIntervalIsZero) {
  auto f = [](double) { return 42.0; };
  const auto r = qags(f, 2.0, 2.0, 1e-10, 1e-10);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_EQ(r.evaluations, 0u);
}

TEST(Qags, RespectsSubintervalBudget) {
  auto f = [](double x) { return 1.0 / std::sqrt(x > 0.0 ? x : 1e-300); };
  QagsOptions opt;
  opt.tol = {1e-14, 1e-14};
  opt.max_subintervals = 3;
  opt.use_extrapolation = false;
  const auto r = qags(f, 0.0, 1.0, opt);
  EXPECT_FALSE(r.converged);  // budget too small without extrapolation
  EXPECT_GT(r.value, 1.0);    // but the estimate is in the right region
}

TEST(Qags, K15VariantWorks) {
  QagsOptions opt;
  opt.rule = KronrodRule::k15;
  auto f = [](double x) { return std::exp(x); };
  const auto r = qags(f, 0.0, 1.0, opt);
  EXPECT_NEAR(r.value, std::exp(1.0) - 1.0, 1e-10);
}

TEST(WynnEpsilon, AcceleratesGeometricPartialSums) {
  // s_n = sum_{k<=n} 0.5^k -> 2; plain sequence converges linearly,
  // epsilon algorithm should nail the limit from a few terms.
  std::vector<double> s;
  double acc = 0.0;
  double term = 1.0;
  for (int n = 0; n < 8; ++n) {
    acc += term;
    term *= 0.5;
    s.push_back(acc);
  }
  const auto r = wynn_epsilon(s);
  EXPECT_NEAR(r.value, 2.0, 1e-10);
}

TEST(WynnEpsilon, NeedsThreeTerms) {
  const std::vector<double> s{1.0, 2.0};
  EXPECT_THROW(wynn_epsilon(s), std::invalid_argument);
}

// ------------------------------------------------------------ kernel registry

TEST(KernelRegistry, CostsMatchMethods) {
  EXPECT_EQ(kernel_cost_evals(KernelMethod::simpson, 64), 129u);
  EXPECT_EQ(kernel_cost_evals(KernelMethod::romberg, 7), 129u);
  EXPECT_EQ(kernel_cost_evals(KernelMethod::romberg, 13), 8193u);
  EXPECT_EQ(kernel_cost_evals(KernelMethod::gauss, 12), 12u);
  EXPECT_EQ(kernel_cost_evals(KernelMethod::trapezoid, 64), 65u);
}

TEST(KernelRegistry, DispatchesToAllMethods) {
  auto f = [](double x) { return x * x; };
  for (auto m : {KernelMethod::simpson, KernelMethod::romberg,
                 KernelMethod::gauss, KernelMethod::trapezoid}) {
    const std::size_t param = m == KernelMethod::romberg ? 6 : 32;
    const auto r = kernel_integrate(m, param, f, 0.0, 1.0);
    EXPECT_NEAR(r.value, 1.0 / 3.0, 1e-3) << to_string(m);
  }
}

TEST(KernelRegistry, Names) {
  EXPECT_EQ(to_string(KernelMethod::simpson), "simpson");
  EXPECT_EQ(to_string(KernelMethod::romberg), "romberg");
}

TEST(Tolerance, CombinedBound) {
  Tolerance tol{1e-3, 1e-6};
  EXPECT_DOUBLE_EQ(tol.bound(1.0), 1e-3);    // absolute dominates
  EXPECT_DOUBLE_EQ(tol.bound(1e6), 1.0);     // relative dominates
}

// ------------------------------------------------------------------ QAGP

TEST(Qagp, SplitsAtKnownDiscontinuities) {
  const double edge = 0.3333;
  auto f = [&](double x) { return x < edge ? 0.0 : std::exp(-(x - edge)); };
  const double exact = 1.0 - std::exp(-(1.0 - edge));
  const std::vector<double> breaks{edge};
  const auto r = qagp(f, 0.0, 1.0, breaks, {});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, exact, 1e-10);
}

TEST(Qagp, CheaperThanQagsOnTheSameJump) {
  const double edge = 0.3333;
  auto f = [&](double x) { return x < edge ? 0.0 : std::exp(-(x - edge)); };
  const std::vector<double> breaks{edge};
  const auto informed = qagp(f, 0.0, 1.0, breaks, {});
  const auto blind = qags(f, 0.0, 1.0, 1e-10, 1e-10);
  EXPECT_LT(informed.evaluations, blind.evaluations);
}

TEST(Qagp, IgnoresOutOfRangeAndDuplicateBreaks) {
  auto f = [](double x) { return x * x; };
  const std::vector<double> breaks{-5.0, 0.5, 0.5, 7.0};
  const auto r = qagp(f, 0.0, 1.0, breaks, {});
  EXPECT_NEAR(r.value, 1.0 / 3.0, 1e-12);
}

TEST(Qagp, NoBreaksEqualsQags) {
  auto f = [](double x) { return std::sin(x); };
  const auto a = qagp(f, 0.0, 2.0, {}, {});
  const auto b = qags(f, 0.0, 2.0, {});
  EXPECT_DOUBLE_EQ(a.value, b.value);
}

TEST(Qagp, ReversedIntervalNegates) {
  auto f = [](double x) { return x; };
  const std::vector<double> breaks{0.5};
  const auto fwd = qagp(f, 0.0, 1.0, breaks, {});
  const auto rev = qagp(f, 1.0, 0.0, breaks, {});
  EXPECT_NEAR(fwd.value, -rev.value, 1e-14);
  EXPECT_NEAR(fwd.value, 0.5, 1e-12);
}

TEST(Qagp, EmptyIntervalZero) {
  auto f = [](double) { return 1.0; };
  const auto r = qagp(f, 1.0, 1.0, {}, {});
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

// ------------------------------------------------- degenerate-input edges
// The RRC binning clamps integration limits to the recombination edge
// (Algorithm 2), which routinely produces zero-width bins [a, a] and bins
// whose integrand is identically zero. Every kernel must return an exact
// 0 with a zero error estimate — not a NaN, not accumulated noise.

TEST(EdgeCases, QagsZeroWidthIntervalIsExactZero) {
  std::size_t calls = 0;
  auto f = [&](double x) {
    ++calls;
    return std::exp(x);
  };
  const auto r = qags(f, 0.75, 0.75, {});
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_DOUBLE_EQ(r.error, 0.0);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(calls, 0u);  // the guard short-circuits before any evaluation
}

TEST(EdgeCases, RombergZeroWidthIntervalIsExactZero) {
  const auto fixed = romberg_fixed([](double x) { return std::exp(x); },
                                   0.75, 0.75, 6);
  EXPECT_DOUBLE_EQ(fixed.value, 0.0);
  const auto adaptive = romberg([](double x) { return std::exp(x); },
                                0.75, 0.75, {});
  EXPECT_DOUBLE_EQ(adaptive.value, 0.0);
}

TEST(EdgeCases, SimpsonZeroWidthIntervalIsExactZero) {
  const auto r = simpson([](double x) { return std::exp(x); }, 2.0, 2.0, 64);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST(EdgeCases, ZeroIntegrandGivesExactZeroOnEveryKernel) {
  auto zero = [](double) { return 0.0; };
  const auto q = qags(zero, 0.0, 10.0, {});
  EXPECT_DOUBLE_EQ(q.value, 0.0);
  EXPECT_DOUBLE_EQ(q.error, 0.0);
  EXPECT_TRUE(q.converged);
  EXPECT_DOUBLE_EQ(simpson(zero, 0.0, 10.0, 64).value, 0.0);
  EXPECT_DOUBLE_EQ(romberg_fixed(zero, 0.0, 10.0, 8).value, 0.0);
  EXPECT_DOUBLE_EQ(gauss_kronrod(zero, 0.0, 10.0, KronrodRule::k21).value,
                   0.0);
}

TEST(EdgeCases, QagsZeroIntegrandConvergesImmediately) {
  // A zero integrand must not trigger the roundoff heuristics or subdivide:
  // one Kronrod application decides everything.
  std::size_t calls = 0;
  auto zero = [&](double) {
    ++calls;
    return 0.0;
  };
  const auto r = qags(zero, 0.0, 1.0, {});
  EXPECT_TRUE(r.converged);
  EXPECT_LE(calls, 21u + 1u);  // one k21 pass, nothing more
}

}  // namespace
