// Tests for the in-process message-passing runtime.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "minimpi/minimpi.h"

namespace {

using namespace hspec::minimpi;

TEST(MiniMpi, RankAndSizeVisible) {
  std::atomic<int> sum{0};
  run(4, [&](Communicator& comm) {
    EXPECT_EQ(comm.size(), 4);
    sum += comm.rank();
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2 + 3);
}

TEST(MiniMpi, PointToPointTyped) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, 42.5);
    } else {
      const Message m = comm.recv(0, 7);
      EXPECT_EQ(m.source, 0);
      EXPECT_EQ(m.tag, 7);
      EXPECT_DOUBLE_EQ(m.as<double>(), 42.5);
    }
  });
}

TEST(MiniMpi, VectorPayload) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_vector(1, 1, std::vector<int>{1, 2, 3});
    } else {
      const auto v = comm.recv().as_vector<int>();
      EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
    }
  });
}

TEST(MiniMpi, WildcardsAndTagFiltering) {
  run(3, [](Communicator& comm) {
    if (comm.rank() != 0) {
      comm.send(0, comm.rank(), comm.rank() * 10);
    } else {
      // Receive tag 2 first although tag 1 may arrive earlier.
      const Message m2 = comm.recv(kAnySource, 2);
      EXPECT_EQ(m2.as<int>(), 20);
      const Message m1 = comm.recv(kAnySource, kAnyTag);
      EXPECT_EQ(m1.as<int>(), 10);
    }
  });
}

TEST(MiniMpi, FifoOrderPerChannel) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 100; ++i) comm.send(1, 5, i);
    } else {
      for (int i = 0; i < 100; ++i)
        EXPECT_EQ(comm.recv(0, 5).as<int>(), i);
    }
  });
}

TEST(MiniMpi, IprobeSeesPendingMessage) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 9, 1);
      comm.barrier();
    } else {
      comm.barrier();  // after barrier the message must be there
      EXPECT_TRUE(comm.iprobe(0, 9));
      EXPECT_FALSE(comm.iprobe(0, 8));
      comm.recv(0, 9);
      EXPECT_FALSE(comm.iprobe());
    }
  });
}

TEST(MiniMpi, BarrierSynchronizes) {
  std::atomic<int> phase_counter{0};
  run(8, [&](Communicator& comm) {
    ++phase_counter;
    comm.barrier();
    // All increments happened before anyone passed the barrier.
    EXPECT_EQ(phase_counter.load(), 8);
    comm.barrier();
  });
}

TEST(MiniMpi, BroadcastFromEveryRoot) {
  run(4, [](Communicator& comm) {
    for (int root = 0; root < comm.size(); ++root) {
      const int payload = comm.rank() == root ? root * 100 : -1;
      const int got = comm.bcast(payload, root);
      EXPECT_EQ(got, root * 100);
    }
  });
}

TEST(MiniMpi, ReduceAndAllreduce) {
  run(6, [](Communicator& comm) {
    const double local = comm.rank() + 1.0;  // 1..6
    const double sum = comm.reduce_sum(local, 0);
    if (comm.rank() == 0) EXPECT_DOUBLE_EQ(sum, 21.0);
    const double all = comm.allreduce_sum(local);
    EXPECT_DOUBLE_EQ(all, 21.0);
  });
}

TEST(MiniMpi, ReduceVector) {
  run(3, [](Communicator& comm) {
    const std::vector<double> local{1.0 * comm.rank(), 1.0};
    const auto total = comm.reduce_sum_vector(local, 2);
    if (comm.rank() == 2) {
      ASSERT_EQ(total.size(), 2u);
      EXPECT_DOUBLE_EQ(total[0], 3.0);
      EXPECT_DOUBLE_EQ(total[1], 3.0);
    } else {
      EXPECT_TRUE(total.empty());
    }
  });
}

TEST(MiniMpi, GatherPreservesRankOrder) {
  run(5, [](Communicator& comm) {
    const auto all = comm.gather(comm.rank() * 2, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), 5u);
      for (int r = 0; r < 5; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 2);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(MiniMpi, BackToBackCollectivesDoNotInterleave) {
  // Regression test: wildcard receives of consecutive same-kind collectives
  // must not steal each other's contributions.
  run(8, [](Communicator& comm) {
    for (int round = 0; round < 50; ++round) {
      const double s = comm.allreduce_sum(1.0);
      ASSERT_DOUBLE_EQ(s, 8.0) << "round " << round;
    }
  });
}

TEST(MiniMpi, RankExceptionPropagates) {
  EXPECT_THROW(
      run(3,
          [](Communicator& comm) {
            if (comm.rank() == 1) throw std::runtime_error("rank 1 died");
          }),
      std::runtime_error);
}

TEST(MiniMpi, InvalidUseThrows) {
  EXPECT_THROW(run(0, [](Communicator&) {}), std::invalid_argument);
  run(1, [](Communicator& comm) {
    EXPECT_THROW(comm.send(5, 0, 1), std::out_of_range);
    EXPECT_THROW(comm.send(-1, 0, 1), std::out_of_range);
  });
}

TEST(MiniMpi, PayloadSizeMismatchDetected) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 3, 1.0);  // double
    } else {
      const Message m = comm.recv(0, 3);
      EXPECT_THROW(m.as<int>(), std::runtime_error);  // wrong size
      EXPECT_DOUBLE_EQ(m.as<double>(), 1.0);
    }
  });
}

TEST(MiniMpi, ManyRanksStress) {
  // 24 ranks (the paper's node) all-to-one then broadcast back.
  run(24, [](Communicator& comm) {
    const double total = comm.allreduce_sum(static_cast<double>(comm.rank()));
    EXPECT_DOUBLE_EQ(total, 276.0);  // sum 0..23
  });
}

}  // namespace
