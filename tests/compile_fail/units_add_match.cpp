// Positive control for the negative-compile test: identical harness, same
// header, same-dimension addition — this file MUST compile, proving the
// units_add_mismatch failure comes from the dimension mismatch and not a
// broken include path or flag set.

#include "util/units.h"

int main() {
  using namespace hspec::util;
  const KeV a{1.0};
  const KeV b{2.0};
  const KeV fine = a + b;
  return static_cast<int>(fine.value());
}
