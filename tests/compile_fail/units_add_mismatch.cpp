// Negative-compile fixture: adding quantities of different dimensions MUST
// be rejected at compile time — this file failing to build is the test
// (ctest `units_add_mismatch_rejected`, WILL_FAIL on a -fsyntax-only run).
// Its sibling units_add_match.cpp is the positive control proving the
// harness itself compiles quantities fine.

#include "util/units.h"

int main() {
  using namespace hspec::util;
  const KeV e{1.0};
  const Seconds t{2.0};
  const auto broken = e + t;  // energy + time: no such operator
  return static_cast<int>(broken.value());
}
