// Tests for the always-on spectral service (DESIGN.md §13): the memoized
// grid cache (quantization, LRU eviction, interpolation bounds, bitwise
// exact-hit identity against a direct HybridDriver run), cross-request
// batch coalescing and dedup, admission control in both policies, the
// per-request ServiceStats surface, and minimpi ranks as clients.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "apec/calculator.h"
#include "core/hybrid.h"
#include "minimpi/minimpi.h"
#include "service/grid_cache.h"
#include "service/service.h"

namespace {

using namespace hspec;
using service::GridCache;
using service::GridCacheConfig;
using service::GridKey;
using service::ServiceConfig;
using service::SpectralService;

// ------------------------------------------------------------- fixtures

/// Small real workload shared by the service tests: a truncated database
/// and a coarse grid keep each executor batch around tens of milliseconds.
struct Workload {
  Workload()
      : db(db_config()),
        grid(apec::EnergyGrid::wavelength(5.0, 40.0, 32)),
        calc(db, grid, calc_options()) {}

  static atomic::DatabaseConfig db_config() {
    atomic::DatabaseConfig cfg;
    cfg.max_z = 6;
    cfg.levels = {2, true};
    return cfg;
  }
  static apec::CalcOptions calc_options() {
    apec::CalcOptions opt;
    opt.integration.adaptive = false;
    return opt;
  }
  static core::HybridConfig hybrid_config() {
    core::HybridConfig cfg;
    cfg.ranks = 2;
    cfg.devices = 2;
    cfg.max_queue_length = 32;
    return cfg;
  }

  atomic::AtomicDatabase db;
  apec::EnergyGrid grid;
  apec::SpectrumCalculator calc;
};

apec::GridPoint point_at(double kT_keV, std::size_t index = 0) {
  apec::GridPoint pt;
  pt.kT_keV = kT_keV;
  pt.ne_cm3 = 1.0;
  pt.time_s = 0.0;
  pt.index = index;
  return pt;
}

GridCache::Bins make_bins(std::initializer_list<double> values) {
  return std::make_shared<const std::vector<double>>(values);
}

// ------------------------------------------------------------ grid cache

TEST(GridCacheKey, IdenticalPointsShareABucket) {
  GridCache cache(GridCacheConfig{});
  const auto a = cache.key_of(point_at(0.8675309));
  const auto b = cache.key_of(point_at(0.8675309));
  EXPECT_EQ(a, b);
}

TEST(GridCacheKey, ZeroSignAndMagnitudeAreDistinct) {
  GridCache cache(GridCacheConfig{});
  apec::GridPoint zero = point_at(1.0);
  zero.time_s = 0.0;
  apec::GridPoint pos = zero;
  pos.time_s = 1.0;
  apec::GridPoint neg = zero;
  neg.time_s = -1.0;
  const auto kz = cache.key_of(zero);
  const auto kp = cache.key_of(pos);
  const auto kn = cache.key_of(neg);
  EXPECT_NE(kz, kp);
  EXPECT_NE(kz, kn);
  EXPECT_NE(kp, kn);
}

TEST(GridCacheKey, ResolutionSeparatesNearbyTemperatures) {
  GridCache cache(GridCacheConfig{});  // rel_resolution 1e-9
  EXPECT_NE(cache.key_of(point_at(1.0)), cache.key_of(point_at(1.0001)));
}

TEST(GridCache, ExactHitReturnsTheStoredBinsObject) {
  GridCache cache(GridCacheConfig{});
  const auto pt = point_at(1.25);
  const auto bins = make_bins({1.0, 2.0, 3.0});
  cache.insert(pt, bins);
  const auto found = cache.lookup(pt);
  ASSERT_NE(found.bins, nullptr);
  EXPECT_FALSE(found.interpolated);
  // Same object, not a copy: bitwise identity is structural.
  EXPECT_EQ(found.bins.get(), bins.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(GridCache, LruEvictsOldestUnderCapacityPressure) {
  GridCacheConfig cfg;
  cfg.capacity = 4;
  cfg.shards = 1;  // one shard so the LRU order is global
  GridCache cache(cfg);
  for (int i = 0; i < 4; ++i)
    cache.insert(point_at(1.0 + i), make_bins({double(i)}));
  // Touch the oldest entry so it is no longer the LRU tail.
  EXPECT_NE(cache.lookup(point_at(1.0)).bins, nullptr);
  // Two more inserts: evicts kT=2.0 then kT=3.0, never the touched 1.0.
  cache.insert(point_at(10.0), make_bins({10.0}));
  cache.insert(point_at(11.0), make_bins({11.0}));
  EXPECT_NE(cache.lookup(point_at(1.0)).bins, nullptr);
  EXPECT_EQ(cache.lookup(point_at(2.0)).bins, nullptr);
  EXPECT_EQ(cache.lookup(point_at(3.0)).bins, nullptr);
  EXPECT_NE(cache.lookup(point_at(4.0)).bins, nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(stats.inserts, 6u);
}

TEST(GridCache, ReinsertRefreshesInsteadOfGrowing) {
  GridCacheConfig cfg;
  cfg.capacity = 2;
  cfg.shards = 1;
  GridCache cache(cfg);
  cache.insert(point_at(1.0), make_bins({1.0}));
  cache.insert(point_at(1.0), make_bins({2.0}));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  const auto found = cache.lookup(point_at(1.0));
  ASSERT_NE(found.bins, nullptr);
  EXPECT_EQ((*found.bins)[0], 2.0);  // last writer wins
}

TEST(GridCache, InterpolationServesBracketedNearHitWithinBound) {
  GridCacheConfig cfg;
  cfg.shards = 1;
  cfg.interpolate = true;
  cfg.interp_max_rel_spacing = 0.25;
  GridCache cache(cfg);
  cache.insert(point_at(1.0), make_bins({1.0, 10.0}));
  cache.insert(point_at(1.2), make_bins({3.0, 30.0}));
  const auto found = cache.lookup(point_at(1.1));
  ASSERT_NE(found.bins, nullptr);
  EXPECT_TRUE(found.interpolated);
  // Linear in temperature, per bin; the tolerance bound is the bracket
  // width times the bins' slope, and the midpoint is exact for a linear
  // profile.
  EXPECT_NEAR((*found.bins)[0], 2.0, 1e-12);
  EXPECT_NEAR((*found.bins)[1], 20.0, 1e-12);
  EXPECT_EQ(cache.stats().interpolated, 1u);
  // Every interpolated bin lies inside [min(b0,b1), max(b0,b1)] — the
  // configurable-tolerance contract for monotone brackets.
  EXPECT_GE((*found.bins)[0], 1.0);
  EXPECT_LE((*found.bins)[0], 3.0);
}

TEST(GridCache, InterpolationRefusesWideBracketsAndExtrapolation) {
  GridCacheConfig cfg;
  cfg.shards = 1;
  cfg.interpolate = true;
  cfg.interp_max_rel_spacing = 0.05;  // 1.0..1.2 bracket is too wide now
  GridCache cache(cfg);
  cache.insert(point_at(1.0), make_bins({1.0}));
  cache.insert(point_at(1.2), make_bins({3.0}));
  EXPECT_EQ(cache.lookup(point_at(1.1)).bins, nullptr);  // bracket too wide
  EXPECT_EQ(cache.lookup(point_at(1.3)).bins, nullptr);  // not bracketed
  EXPECT_EQ(cache.stats().interpolated, 0u);
}

TEST(GridCache, InterpolationNeverCrossesFamilies) {
  GridCacheConfig cfg;
  cfg.shards = 1;
  cfg.interpolate = true;
  GridCache cache(cfg);
  auto lo = point_at(1.0);
  lo.ne_cm3 = 1.0;
  auto hi = point_at(1.2);
  hi.ne_cm3 = 2.0;  // different density family
  cache.insert(lo, make_bins({1.0}));
  cache.insert(hi, make_bins({3.0}));
  auto probe = point_at(1.1);
  probe.ne_cm3 = 1.0;
  EXPECT_EQ(cache.lookup(probe).bins, nullptr);
}

// -------------------------------------------------------------- service

TEST(SpectralService, ExactHitIsBitwiseIdenticalToDirectRun) {
  Workload w;
  ServiceConfig cfg;
  cfg.hybrid = Workload::hybrid_config();
  SpectralService svc(w.calc, cfg);

  const std::vector<apec::GridPoint> pts{point_at(0.7)};
  const auto first = svc.submit(pts).wait();
  EXPECT_EQ(first.stats.cache_misses, 1u);
  const auto second = svc.submit(pts).wait();
  EXPECT_EQ(second.stats.cache_hits, 1u);
  EXPECT_EQ(second.stats.cache_misses, 0u);
  EXPECT_EQ(second.stats.batch_points, 0u);  // fully cache-served

  core::HybridDriver direct(w.calc, cfg.hybrid);
  const auto fresh = direct.run(pts);
  ASSERT_EQ(second.spectra.size(), 1u);
  for (std::size_t b = 0; b < w.grid.bin_count(); ++b) {
    const double cached = second.spectra[0][b];
    const double ref = fresh.spectra[0][b];
    EXPECT_EQ(std::memcmp(&cached, &ref, sizeof(double)), 0)
        << "bin " << b << " differs bitwise";
  }
}

TEST(SpectralService, CoalescesQueuedRequestsIntoOneBatch) {
  Workload w;
  ServiceConfig cfg;
  cfg.hybrid = Workload::hybrid_config();
  cfg.autostart = false;  // queue first, then start: deterministic grouping
  SpectralService svc(w.calc, cfg);

  auto t1 = svc.submit({point_at(0.4), point_at(0.5)});
  auto t2 = svc.submit({point_at(0.6)});
  auto t3 = svc.submit({point_at(0.7)});
  svc.start();
  const auto r1 = t1.wait();
  const auto r2 = t2.wait();
  const auto r3 = t3.wait();

  // The coalescing criterion: one executor batch carried more than one
  // point, contributed by at least two distinct requests.
  EXPECT_EQ(r1.stats.batch_points, 4u);
  EXPECT_EQ(r1.stats.batch_requests, 3u);
  EXPECT_EQ(r2.stats.batch_points, 4u);
  EXPECT_GE(r2.stats.batch_requests, 2u);
  EXPECT_EQ(r3.stats.batch_requests, 3u);

  const auto tel = svc.telemetry();
  EXPECT_EQ(tel.batches, 1u);
  EXPECT_EQ(tel.coalesced_batches, 1u);
  EXPECT_EQ(tel.max_batch_points, 4u);
  EXPECT_EQ(tel.max_batch_requests, 3u);

  // Spot-check correctness of a coalesced result against a direct run.
  core::HybridDriver direct(w.calc, cfg.hybrid);
  const auto fresh = direct.run({point_at(0.6)});
  for (std::size_t b = 0; b < w.grid.bin_count(); ++b)
    EXPECT_EQ(r2.spectra[0][b], fresh.spectra[0][b]) << "bin " << b;
}

TEST(SpectralService, DeduplicatesSamePointAcrossRequests) {
  Workload w;
  ServiceConfig cfg;
  cfg.hybrid = Workload::hybrid_config();
  cfg.autostart = false;
  SpectralService svc(w.calc, cfg);

  auto t1 = svc.submit({point_at(0.9)});
  auto t2 = svc.submit({point_at(0.9)});  // same quantized bucket
  svc.start();
  const auto r1 = t1.wait();
  const auto r2 = t2.wait();
  // Both requests missed (nothing was cached), yet the executor saw the
  // point once.
  EXPECT_EQ(r1.stats.cache_misses, 1u);
  EXPECT_EQ(r2.stats.cache_misses, 1u);
  EXPECT_EQ(r1.stats.batch_points, 1u);
  EXPECT_EQ(r1.stats.batch_requests, 2u);
  for (std::size_t b = 0; b < w.grid.bin_count(); ++b)
    EXPECT_EQ(r1.spectra[0][b], r2.spectra[0][b]);
  EXPECT_EQ(svc.telemetry().batches, 1u);
}

TEST(SpectralService, RejectPolicyThrowsWhenQueueIsFull) {
  Workload w;
  ServiceConfig cfg;
  cfg.hybrid = Workload::hybrid_config();
  cfg.admission = ServiceConfig::Admission::reject;
  cfg.max_pending_points = 2;
  cfg.autostart = false;  // nothing drains: the gate must close
  SpectralService svc(w.calc, cfg);

  auto t1 = svc.submit({point_at(0.4), point_at(0.5)});
  EXPECT_THROW(svc.submit({point_at(0.6)}), service::ServiceOverloaded);
  EXPECT_EQ(svc.telemetry().requests_rejected, 1u);

  svc.start();  // drain so the queued ticket completes
  EXPECT_EQ(t1.wait().spectra.size(), 2u);
}

TEST(SpectralService, BlockPolicyAdmitsOnceTheQueueDrains) {
  Workload w;
  ServiceConfig cfg;
  cfg.hybrid = Workload::hybrid_config();
  cfg.admission = ServiceConfig::Admission::block;
  cfg.max_pending_points = 2;
  SpectralService svc(w.calc, cfg);

  // More in flight than the gate admits at once: later submits block until
  // the worker drains, then everything completes.
  std::vector<SpectralService::Ticket> tickets;
  for (int i = 0; i < 5; ++i)
    tickets.push_back(svc.submit({point_at(0.3 + 0.1 * i)}));
  for (auto& t : tickets) EXPECT_EQ(t.wait().spectra.size(), 1u);
  const auto tel = svc.telemetry();
  EXPECT_EQ(tel.requests_submitted, 5u);
  EXPECT_EQ(tel.requests_completed, 5u);
  EXPECT_EQ(tel.requests_rejected, 0u);
}

TEST(SpectralService, StatsSurfaceDeviceHealthAndQueueWait) {
  Workload w;
  ServiceConfig cfg;
  cfg.hybrid = Workload::hybrid_config();
  SpectralService svc(w.calc, cfg);

  const auto miss = svc.submit({point_at(1.5)}).wait();
  EXPECT_GE(miss.stats.queue_wait_s, 0.0);
  // A computed request carries the batch's fault/health surface: one entry
  // per device, all healthy on a fault-free run.
  ASSERT_EQ(miss.stats.device_health.size(),
            static_cast<std::size_t>(svc.device_count()));
  for (const auto h : miss.stats.device_health)
    EXPECT_EQ(h, core::DeviceHealth::healthy);
  EXPECT_EQ(miss.stats.faults.injected, 0);

  // A fully cached request never touched a device: the surface is empty.
  const auto hit = svc.submit({point_at(1.5)}).wait();
  EXPECT_TRUE(hit.stats.device_health.empty());
  EXPECT_EQ(hit.stats.batch_points, 0u);
}

TEST(SpectralService, EmptyRequestCompletesImmediately) {
  Workload w;
  ServiceConfig cfg;
  cfg.hybrid = Workload::hybrid_config();
  cfg.autostart = false;  // no worker: completion cannot come from dispatch
  SpectralService svc(w.calc, cfg);
  auto ticket = svc.submit({});
  EXPECT_TRUE(ticket.done());
  EXPECT_TRUE(ticket.wait().spectra.empty());
}

TEST(SpectralService, StopDrainsThenRejectsNewWork) {
  Workload w;
  ServiceConfig cfg;
  cfg.hybrid = Workload::hybrid_config();
  SpectralService svc(w.calc, cfg);
  auto ticket = svc.submit({point_at(0.8)});
  svc.stop();
  EXPECT_EQ(ticket.wait().spectra.size(), 1u);  // drained, not dropped
  EXPECT_THROW(svc.submit({point_at(0.9)}), service::ServiceStopped);
}

TEST(SpectralService, StopWithoutStartFailsQueuedTickets) {
  Workload w;
  ServiceConfig cfg;
  cfg.hybrid = Workload::hybrid_config();
  cfg.autostart = false;
  SpectralService svc(w.calc, cfg);
  auto ticket = svc.submit({point_at(0.8)});
  svc.stop();  // never started: the queued request cannot ever run
  EXPECT_THROW(ticket.wait(), service::ServiceStopped);
}

TEST(SpectralService, MinimpiRanksActAsConcurrentClients) {
  Workload w;
  ServiceConfig cfg;
  cfg.hybrid = Workload::hybrid_config();
  SpectralService svc(w.calc, cfg);

  // Four ranks share the service; each submits its own temperature plus a
  // common one, so ranks both coalesce and hit each other's cache fills.
  constexpr int kRanks = 4;
  std::vector<double> totals(kRanks, 0.0);
  minimpi::run(kRanks, [&](minimpi::Communicator& comm) {
    const int r = comm.rank();
    auto ticket = svc.submit({point_at(0.5 + 0.1 * r), point_at(2.0)});
    const auto reply = ticket.wait();
    totals[static_cast<std::size_t>(r)] = reply.spectra[0].total();
    comm.barrier();
  });
  for (double total : totals) EXPECT_GT(total, 0.0);
  const auto tel = svc.telemetry();
  EXPECT_EQ(tel.requests_submitted, static_cast<std::uint64_t>(kRanks));
  EXPECT_EQ(tel.requests_completed, static_cast<std::uint64_t>(kRanks));
  // The shared point was computed at most once; later ranks were served
  // from the cache or the deduplicated batch slot.
  const auto cache_stats = svc.cache_stats();
  EXPECT_GE(cache_stats.entries, 1u);
  EXPECT_LE(cache_stats.entries, static_cast<std::size_t>(kRanks) + 1u);
}

}  // namespace
