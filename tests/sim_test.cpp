// Tests for the discrete-event engine and the hybrid-execution replay.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/event_queue.h"
#include "sim/analytic_bounds.h"
#include "sim/hybrid_sim.h"
#include "util/rng.h"

namespace {

using namespace hspec::sim;

// ---------------------------------------------------------------- event queue

TEST(EventQueue, ProcessesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_DOUBLE_EQ(sim.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.schedule(1.0, chain);
  };
  sim.schedule(0.0, chain);
  EXPECT_DOUBLE_EQ(sim.run(), 9.0);
  EXPECT_EQ(depth, 10);
}

TEST(EventQueue, RunUntilLeavesRemainder) {
  Simulation sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(5.0, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RejectsBadDelays) {
  Simulation sim;
  EXPECT_THROW(sim.schedule(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule(std::nan(""), [] {}), std::invalid_argument);
}

// ----------------------------------------------------------------- hybrid sim

HybridSimConfig small_config() {
  HybridSimConfig c;
  c.ranks = 4;
  c.devices = 1;
  c.max_queue_length = 4;
  c.total_tasks = 100;
  c.prep_s = 0.01;
  c.cpu_task_s = 0.2;
  c.gpu_task_s = 0.002;
  c.jitter = 0.0;
  return c;
}

TEST(HybridSim, ConservesTasks) {
  const auto r = simulate_hybrid(small_config());
  EXPECT_EQ(r.tasks_gpu + r.tasks_cpu, 100u);
  std::int64_t hist = 0;
  for (auto h : r.history) hist += h;
  EXPECT_EQ(static_cast<std::uint64_t>(hist), r.tasks_gpu);
}

TEST(HybridSim, SingleRankSingleDeviceIsAnalytic) {
  // One rank, one device, no jitter: every task runs prep then GPU service
  // with an empty queue; makespan = n * (prep + gpu + sched_overhead).
  HybridSimConfig c = small_config();
  c.ranks = 1;
  c.total_tasks = 10;
  c.sched_overhead_s = 0.0;
  const auto r = simulate_hybrid(c);
  EXPECT_EQ(r.tasks_gpu, 10u);
  EXPECT_NEAR(r.makespan_s, 10 * (0.01 + 0.002), 1e-9);
  ASSERT_EQ(r.device_busy_s.size(), 1u);
  EXPECT_NEAR(r.device_busy_s[0], 10 * 0.002, 1e-9);
}

TEST(HybridSim, ZeroDevicesAllCpu) {
  HybridSimConfig c = small_config();
  c.devices = 0;
  const auto r = simulate_hybrid(c);
  EXPECT_EQ(r.tasks_gpu, 0u);
  EXPECT_EQ(r.tasks_cpu, 100u);
  EXPECT_DOUBLE_EQ(r.gpu_task_ratio(), 0.0);
  EXPECT_TRUE(r.history.empty());
}

TEST(HybridSim, MoreDevicesNeverSlower) {
  HybridSimConfig c = small_config();
  c.ranks = 24;
  c.total_tasks = 2000;
  double prev = 1e300;
  for (int d = 1; d <= 4; ++d) {
    c.devices = d;
    const auto r = simulate_hybrid(c);
    EXPECT_LE(r.makespan_s, prev * 1.02) << d << " devices";
    prev = r.makespan_s;
  }
}

TEST(HybridSim, LargerQueueRaisesGpuShare) {
  HybridSimConfig c = small_config();
  c.ranks = 24;
  c.total_tasks = 2000;
  c.jitter = 0.1;
  c.max_queue_length = 2;
  const auto tight = simulate_hybrid(c);
  c.max_queue_length = 12;
  const auto roomy = simulate_hybrid(c);
  EXPECT_GT(roomy.gpu_task_ratio(), tight.gpu_task_ratio());
  EXPECT_LT(roomy.makespan_s, tight.makespan_s);
}

TEST(HybridSim, DeterministicForFixedSeed) {
  HybridSimConfig c = small_config();
  c.jitter = 0.1;
  c.seed = 1234;
  const auto a = simulate_hybrid(c);
  const auto b = simulate_hybrid(c);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.tasks_gpu, b.tasks_gpu);
  c.seed = 99;
  const auto d = simulate_hybrid(c);
  EXPECT_NE(a.makespan_s, d.makespan_s);
}

TEST(HybridSim, ResidencyAccountsForWholeRun) {
  HybridSimConfig c = small_config();
  c.ranks = 8;
  const auto r = simulate_hybrid(c);
  double total = 0.0;
  for (double t : r.load0_residency_s) total += t;
  EXPECT_NEAR(total, r.makespan_s, 1e-6 * r.makespan_s);
  // Load never recorded above the bound.
  ASSERT_EQ(r.load0_residency_s.size(),
            static_cast<std::size_t>(c.max_queue_length) + 1);
}

TEST(HybridSim, LoadThresholdFractionIsAFraction) {
  const auto r = simulate_hybrid(small_config());
  const double f0 = r.load0_fraction_at_least(0);
  const double f3 = r.load0_fraction_at_least(3);
  EXPECT_NEAR(f0, 1.0, 1e-12);
  EXPECT_GE(f3, 0.0);
  EXPECT_LE(f3, f0);
}

TEST(HybridSim, HeavierGpuTasksShiftLoadToCpu) {
  HybridSimConfig c = small_config();
  c.ranks = 24;
  c.devices = 2;
  c.total_tasks = 3000;
  c.jitter = 0.1;
  const auto light = simulate_hybrid(c);
  c.gpu_task_s *= 40.0;  // the Table I complexity dial
  const auto heavy = simulate_hybrid(c);
  EXPECT_LT(heavy.gpu_task_ratio(), light.gpu_task_ratio());
  EXPECT_GT(heavy.load0_fraction_at_least(3),
            light.load0_fraction_at_least(3));
}

TEST(HybridSim, ValidatesConfig) {
  HybridSimConfig c = small_config();
  c.ranks = 0;
  EXPECT_THROW(simulate_hybrid(c), std::invalid_argument);
  c = small_config();
  c.jitter = 1.5;
  EXPECT_THROW(simulate_hybrid(c), std::invalid_argument);
  c = small_config();
  c.max_queue_length = 0;
  EXPECT_THROW(simulate_hybrid(c), std::invalid_argument);
}

TEST(HybridSim, TasksSplitNearEqually) {
  // 10 tasks over 4 ranks: ranks get 3,3,2,2 — all must finish.
  HybridSimConfig c = small_config();
  c.ranks = 4;
  c.total_tasks = 10;
  const auto r = simulate_hybrid(c);
  EXPECT_EQ(r.tasks_gpu + r.tasks_cpu, 10u);
}

// ------------------------------------------------------------ analytic bounds

TEST(AnalyticBounds, DesNeverBeatsTheLowerBound) {
  hspec::util::Xoshiro256 rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    HybridSimConfig cfg;
    cfg.ranks = 1 + static_cast<int>(rng.bounded(16));
    cfg.devices = static_cast<int>(rng.bounded(4));
    cfg.max_queue_length = 1 + static_cast<int>(rng.bounded(10));
    cfg.total_tasks = 20 + rng.bounded(400);
    cfg.prep_s = rng.uniform(1e-3, 0.1);
    cfg.cpu_task_s = rng.uniform(0.05, 1.0);
    cfg.gpu_task_s = rng.uniform(1e-3, 0.05);
    cfg.jitter = 0.0;
    cfg.asynchronous = rng.uniform() < 0.5;
    const auto bounds = analytic_bounds(cfg);
    const auto res = simulate_hybrid(cfg);
    ASSERT_GE(res.makespan_s, bounds.lower_bound_s * (1.0 - 1e-9))
        << "trial " << trial;
    // And within a small factor when a GPU exists (the DES is not absurdly
    // pessimistic either).
    if (cfg.devices > 0)
      ASSERT_LE(res.makespan_s, 20.0 * bounds.lower_bound_s) << trial;
  }
}

TEST(AnalyticBounds, GpuBoundDominatesWhenDevicesAreScarce) {
  HybridSimConfig cfg;
  cfg.ranks = 12;
  cfg.devices = 1;
  cfg.total_tasks = 1000;
  cfg.prep_s = 0.001;   // prep trivial
  cfg.cpu_task_s = 1e9; // CPU fallback hopeless...
  cfg.gpu_task_s = 0.01;
  // ...and with qlen >= ranks the queue can never reject, so every task
  // stays on the single GPU and the service bound is the whole story.
  cfg.max_queue_length = 12;
  cfg.jitter = 0.0;
  const auto bounds = analytic_bounds(cfg);
  const auto res = simulate_hybrid(cfg);
  EXPECT_GT(bounds.gpu_bound_s, bounds.prep_bound_s);
  // The run lands near the GPU service bound.
  EXPECT_NEAR(res.makespan_s, bounds.gpu_bound_s,
              0.2 * bounds.gpu_bound_s);
}

TEST(AnalyticBounds, PrepBoundDominatesWithManyDevices) {
  HybridSimConfig cfg;
  cfg.ranks = 4;
  cfg.devices = 8;
  cfg.total_tasks = 400;
  cfg.prep_s = 0.1;        // preparation is the bottleneck
  cfg.cpu_task_s = 1.0;
  cfg.gpu_task_s = 1e-4;
  cfg.jitter = 0.0;
  const auto bounds = analytic_bounds(cfg);
  const auto res = simulate_hybrid(cfg);
  EXPECT_GT(bounds.prep_bound_s, bounds.gpu_bound_s);
  EXPECT_NEAR(res.makespan_s, bounds.prep_bound_s,
              0.05 * bounds.prep_bound_s);
}

}  // namespace
