// Tests pinning the calibrated cost model to the paper's reported anchors.

#include <gtest/gtest.h>

#include "perfmodel/calibration.h"
#include "perfmodel/nei_cost.h"

namespace {

using namespace hspec;
using namespace hspec::perfmodel;

TEST(Calibration, PaperWorkloadScale) {
  const auto w = paper_workload();
  EXPECT_EQ(w.ions_per_point, 496u);
  // "the total amount of RRC integrations in each grid point is up to 1e8
  // order of magnitude" (Fig. 1 caption says up to 2e8).
  EXPECT_GE(w.integrals_per_point(), 50'000'000u);
  EXPECT_LE(w.integrals_per_point(), 200'000'000u);
}

TEST(Calibration, SerialPointTimeNear800Seconds) {
  const SpectralCostModel m({}, paper_workload());
  // §IV: "the average time of one grid point is nearly 800 s".
  EXPECT_NEAR(m.serial_point_s(), 800.0, 60.0);
}

TEST(Calibration, IntegralsDominateSerialTime) {
  // §I: "the integral operations account for more than 90% of the total".
  const SpectralCostModel m({}, paper_workload());
  const double integral_share =
      m.ion_cpu_s() / (m.ion_cpu_s() + m.ion_prep_s());
  EXPECT_GT(integral_share, 0.90);
}

TEST(Calibration, MpiOnlySpeedupIs13Point5) {
  const SpectralCostModel m({}, paper_workload());
  const double serial = 24.0 * m.serial_point_s();
  EXPECT_NEAR(serial / m.mpi_only_s(24), 13.5, 0.1);
  // Fewer ranks than the contention ceiling scale linearly.
  EXPECT_NEAR(serial / m.mpi_only_s(24, 4), 4.0, 1e-9);
  EXPECT_THROW(m.mpi_only_s(24, 0), std::invalid_argument);
}

TEST(Calibration, GpuTaskOrdersOfMagnitude) {
  const SpectralCostModel m({}, paper_workload());
  // Per-task: GPU milliseconds, CPU seconds — the ~180x per-device gap that
  // yields the Fig. 3 speedups once 496 x 24 tasks flow through.
  EXPECT_GT(m.ion_gpu_s(), 1e-3);
  EXPECT_LT(m.ion_gpu_s(), 20e-3);
  EXPECT_GT(m.ion_cpu_s(), 1.0);
  EXPECT_LT(m.ion_cpu_s(), 2.0);
  EXPECT_GT(m.ion_cpu_s() / m.ion_gpu_s(), 100.0);
}

TEST(Calibration, LevelGranularityPaysFixedOverheadFourTimes) {
  const SpectralCostModel m({}, paper_workload());
  // One ion = 4 levels: the level path repeats context switch + transfers.
  EXPECT_LT(m.level_gpu_s(), m.ion_gpu_s());
  EXPECT_GT(4.0 * m.level_gpu_s(), 1.5 * m.ion_gpu_s());
  EXPECT_NEAR(m.level_cpu_s() * 4.0, m.ion_cpu_s(), 1e-12);
  EXPECT_GT(m.level_prep_s() * 4.0, m.ion_prep_s());  // fixed part repeats
}

TEST(Calibration, RombergComplexityDial) {
  // Table I: computation per task steps x4 per k += 2.
  PaperCalibration cal;
  auto w = paper_workload();
  w.method = quad::KernelMethod::romberg;
  double prev = 0.0;
  for (std::size_t k = 7; k <= 13; k += 2) {
    w.method_param = k;
    const SpectralCostModel m(cal, w);
    EXPECT_NEAR(m.gpu_evals_per_bin(), static_cast<double>((1u << k) + 1),
                1e-12);
    if (prev > 0.0) {
      const double kernel_growth =
          (m.ion_gpu_s() - cal.gpu_context_switch_s) /
          (prev - cal.gpu_context_switch_s);
      EXPECT_NEAR(kernel_growth, 4.0, 0.3) << "k=" << k;
    }
    prev = m.ion_gpu_s();
  }
}

TEST(Calibration, SimpsonAndRomberg7CostTheSame) {
  // 2*64+1 == 2^7+1: the Fig. 5 (Simpson) and Table I k=7 rows agree.
  PaperCalibration cal;
  auto simpson = paper_workload();
  auto romberg = paper_workload();
  romberg.method = quad::KernelMethod::romberg;
  romberg.method_param = 7;
  EXPECT_DOUBLE_EQ(SpectralCostModel(cal, simpson).ion_gpu_s(),
                   SpectralCostModel(cal, romberg).ion_gpu_s());
}

TEST(Calibration, SchedulerOverheadFarBelowMps) {
  const PaperCalibration cal;
  // §II-B/§V: shared memory avoids the client-server overhead of MPS.
  EXPECT_LT(cal.shm_scheduler_overhead_s * 10.0, cal.mps_scheduler_overhead_s);
}

TEST(Calibration, RejectsEmptyWorkload) {
  auto w = paper_workload();
  w.bins_per_level = 0;
  EXPECT_THROW(SpectralCostModel({}, w), std::invalid_argument);
}

// ------------------------------------------------------------------ NEI model

TEST(NeiModel, TableIIBaselineAnchor) {
  const NeiCostModel m({}, {});
  // Table II: 24-rank MPI baseline = 3137 s x 2.8 ~ 8784 s for 1e6 points
  // x 1000 steps. Allow 20% on the synthetic flop count.
  EXPECT_NEAR(m.mpi_only_s(), 8784.0, 0.2 * 8784.0);
}

TEST(NeiModel, TaskDurationsOrdered) {
  const NeiCostModel m({}, {});
  EXPECT_LT(m.gpu_task_s(), m.cpu_task_s());
  EXPECT_LT(m.prep_s(), m.cpu_task_s());
  // The packed NEI task is tiny next to a spectral ion task.
  EXPECT_LT(m.cpu_task_s(), 5e-3);
  EXPECT_GT(m.gpu_task_s(), 1e-5);
}

TEST(NeiModel, WorkloadAccounting) {
  NeiWorkload w;
  EXPECT_EQ(w.tasks_per_point(), 100u);
  EXPECT_EQ(w.total_tasks(), 100'000'000u);
  w.grid_points = 10;
  w.timesteps = 50;
  w.steps_per_task = 10;
  EXPECT_EQ(NeiCostModel({}, w).workload().total_tasks(), 50u);
  w.steps_per_task = 7;  // does not divide 50
  EXPECT_THROW(NeiCostModel({}, w), std::invalid_argument);
}

}  // namespace
