// Multi-threaded submit soak for the spectral service (label: soak, not
// tier-1; CI's fault-soak job runs it under ThreadSanitizer). A storm of
// client threads hammers one service through a tight admission gate while
// a second wave stops and restarts nothing — the service must survive
// concurrent submit/wait traffic with every reply correct and every
// counter consistent. HSPEC_SOAK=full scales the storm up.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "apec/calculator.h"
#include "core/hybrid.h"
#include "service/service.h"

namespace {

using namespace hspec;
using service::ServiceConfig;
using service::SpectralService;

bool full_soak() {
  const char* env = std::getenv("HSPEC_SOAK");
  return env != nullptr && std::string(env) == "full";
}

apec::GridPoint point_at(double kT_keV) {
  apec::GridPoint pt;
  pt.kT_keV = kT_keV;
  pt.ne_cm3 = 1.0;
  pt.time_s = 0.0;
  pt.index = 0;
  return pt;
}

TEST(ServiceSoak, ConcurrentSubmitStormThroughTightGate) {
  atomic::DatabaseConfig db_cfg;
  db_cfg.max_z = 6;
  db_cfg.levels = {2, true};
  const atomic::AtomicDatabase db(db_cfg);
  const auto grid = apec::EnergyGrid::wavelength(5.0, 40.0, 32);
  apec::CalcOptions opt;
  opt.integration.adaptive = false;
  const apec::SpectrumCalculator calc(db, grid, opt);

  const int clients = full_soak() ? 16 : 6;
  const int requests = full_soak() ? 40 : 10;
  const int pool = 8;  // few distinct points: heavy cache/dedup contention

  // Ground truth: every pool point computed once, directly.
  std::vector<apec::GridPoint> pool_pts;
  for (int p = 0; p < pool; ++p)
    pool_pts.push_back(point_at(0.3 + 0.15 * p));
  core::HybridConfig hybrid_cfg;
  hybrid_cfg.ranks = 2;
  hybrid_cfg.devices = 2;
  hybrid_cfg.max_queue_length = 32;
  core::HybridDriver direct(calc, hybrid_cfg);
  const auto truth = direct.run(pool_pts);

  ServiceConfig cfg;
  cfg.hybrid = hybrid_cfg;
  cfg.max_pending_points = 4;  // tight gate: submitters block constantly
  cfg.admission = ServiceConfig::Admission::block;
  SpectralService svc(calc, cfg);

  std::vector<std::size_t> mismatches(static_cast<std::size_t>(clients), 0);
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        std::size_t bad = 0;
        for (int r = 0; r < requests; ++r) {
          const std::size_t slot =
              static_cast<std::size_t>(c + r * 3) %
              pool_pts.size();
          const auto reply = svc.submit({pool_pts[slot]}).wait();
          // Every reply must be the exact spectrum of its point: either a
          // bitwise cache hit or a fresh computation of the same task set.
          for (std::size_t b = 0; b < grid.bin_count(); ++b)
            if (reply.spectra[0][b] != truth.spectra[slot][b]) ++bad;
          // Scheduling-latency surfacing (DESIGN.md §15): a reply whose
          // misses ran a batch must carry that batch's clocked decisions;
          // a fully cached reply carries a zeroed histogram.
          if (reply.stats.batch_points > 0 &&
              reply.stats.sched.decisions <= 0)
            ++bad;
          if (reply.stats.sched.mean_ns() < 0.0 ||
              reply.stats.sched.latency_ns_total < 0)
            ++bad;
        }
        mismatches[static_cast<std::size_t>(c)] = bad;
      });
    }
    for (auto& t : threads) t.join();
  }
  for (std::size_t bad : mismatches) EXPECT_EQ(bad, 0u);

  const auto tel = svc.telemetry();
  const auto expected =
      static_cast<std::uint64_t>(clients) * static_cast<std::uint64_t>(requests);
  EXPECT_EQ(tel.requests_submitted, expected);
  EXPECT_EQ(tel.requests_completed, expected);
  EXPECT_EQ(tel.requests_rejected, 0u);
  // The pool is tiny and the storm long: the cache must end warm and the
  // executor must have run far fewer batches than requests.
  const auto cache = svc.cache_stats();
  EXPECT_EQ(cache.entries, static_cast<std::size_t>(pool));
  EXPECT_LT(tel.batches, expected);
  EXPECT_GT(cache.hits, 0u);
}

TEST(ServiceSoak, StopUnderFireFailsOrFinishesEveryTicket) {
  atomic::DatabaseConfig db_cfg;
  db_cfg.max_z = 4;
  db_cfg.levels = {2, true};
  const atomic::AtomicDatabase db(db_cfg);
  const auto grid = apec::EnergyGrid::wavelength(5.0, 40.0, 16);
  apec::CalcOptions opt;
  opt.integration.adaptive = false;
  const apec::SpectrumCalculator calc(db, grid, opt);

  ServiceConfig cfg;
  cfg.hybrid.ranks = 2;
  cfg.hybrid.devices = 2;
  cfg.hybrid.max_queue_length = 32;
  SpectralService svc(calc, cfg);

  // Submitters race a stop(): every ticket either completes with spectra
  // or fails with ServiceStopped — nothing hangs, nothing leaks.
  const int clients = full_soak() ? 8 : 4;
  std::vector<std::uint64_t> outcomes(static_cast<std::size_t>(clients), 0);
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::uint64_t completed = 0;
      try {
        for (int r = 0; r < 50; ++r) {
          auto ticket = svc.submit({point_at(0.4 + 0.01 * (c * 50 + r))});
          const auto reply = ticket.wait();
          completed += reply.spectra.size();
        }
      } catch (const service::ServiceStopped&) {
        // expected once the stop lands
      }
      outcomes[static_cast<std::size_t>(c)] = completed;
    });
  }
  svc.stop();
  for (auto& t : threads) t.join();
  for (std::uint64_t completed : outcomes) EXPECT_LE(completed, 50u);
  const auto tel = svc.telemetry();
  EXPECT_EQ(tel.requests_completed, tel.requests_submitted);
}

}  // namespace
