// Property-based and differential-fuzz suites: the scheduler policy against
// a brute-force reference, DES invariants over randomized configurations,
// integrator convergence orders over a method sweep, and conservation
// properties of the physics substrates over randomized inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "atomic/ion_balance.h"
#include "atomic/rates.h"
#include "core/scheduler.h"
#include "nei/system.h"
#include "quad/integrate.h"
#include "rrc/rrc.h"
#include "sim/hybrid_sim.h"
#include "util/rng.h"

namespace {

using namespace hspec;

// ----------------------------------------- scheduler policy differential fuzz

/// Brute-force restatement of Algorithm 1's selection rule.
int reference_pick(const std::vector<std::int32_t>& loads,
                   const std::vector<std::int64_t>& hist, std::int32_t lmax) {
  int best = -1;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (best < 0 || loads[i] < loads[static_cast<std::size_t>(best)] ||
        (loads[i] == loads[static_cast<std::size_t>(best)] &&
         hist[i] < hist[static_cast<std::size_t>(best)]))
      best = static_cast<int>(i);
  }
  if (best >= 0 && loads[static_cast<std::size_t>(best)] >= lmax) return -1;
  return best;
}

TEST(PolicyFuzz, PickDeviceMatchesBruteForceReference) {
  util::Xoshiro256 rng(2026);
  for (int trial = 0; trial < 20'000; ++trial) {
    const std::size_t n = 1 + rng.bounded(8);
    const auto lmax = static_cast<std::int32_t>(1 + rng.bounded(12));
    std::vector<std::int32_t> loads(n);
    std::vector<std::int64_t> hist(n);
    for (auto& l : loads)
      l = static_cast<std::int32_t>(rng.bounded(
          static_cast<std::uint64_t>(lmax) + 2));
    for (auto& h : hist) h = static_cast<std::int64_t>(rng.bounded(5));
    ASSERT_EQ(core::pick_device(loads, hist, lmax),
              reference_pick(loads, hist, lmax))
        << "trial " << trial;
  }
}

TEST(PolicyFuzz, SchedulerSequenceMatchesSerialReference) {
  // Drive TaskScheduler and a hand-simulated load/history model with the
  // same random alloc/free sequence; they must agree step for step.
  util::Xoshiro256 rng(7);
  for (int round = 0; round < 50; ++round) {
    const int devices = 1 + static_cast<int>(rng.bounded(4));
    const int lmax = 1 + static_cast<int>(rng.bounded(6));
    auto shm = core::ShmRegion::create_inprocess(devices, lmax);
    core::TaskScheduler sched(shm.view());

    std::vector<std::int32_t> loads(static_cast<std::size_t>(devices), 0);
    std::vector<std::int64_t> hist(static_cast<std::size_t>(devices), 0);
    std::vector<int> outstanding;
    for (int step = 0; step < 200; ++step) {
      const bool do_alloc = outstanding.empty() || rng.uniform() < 0.6;
      if (do_alloc) {
        const int got = sched.sche_alloc();
        const int expect = reference_pick(loads, hist, lmax);
        ASSERT_EQ(got, expect) << "round " << round << " step " << step;
        if (expect >= 0) {
          ++loads[static_cast<std::size_t>(expect)];
          ++hist[static_cast<std::size_t>(expect)];
          outstanding.push_back(expect);
        }
      } else {
        const std::size_t pick = rng.bounded(outstanding.size());
        const int dev = outstanding[pick];
        outstanding.erase(outstanding.begin() +
                          static_cast<std::ptrdiff_t>(pick));
        sched.sche_free(dev);
        --loads[static_cast<std::size_t>(dev)];
      }
    }
  }
}

// ------------------------------------------------------------- DES invariants

TEST(SimFuzz, InvariantsOverRandomConfigurations) {
  util::Xoshiro256 rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    sim::HybridSimConfig cfg;
    cfg.ranks = 1 + static_cast<int>(rng.bounded(24));
    cfg.devices = static_cast<int>(rng.bounded(5));
    cfg.max_queue_length = 1 + static_cast<int>(rng.bounded(12));
    cfg.total_tasks = 1 + rng.bounded(600);
    cfg.prep_s = rng.uniform(1e-3, 0.2);
    cfg.cpu_task_s = rng.uniform(0.05, 2.0);
    cfg.gpu_task_s = rng.uniform(1e-4, 0.05);
    cfg.jitter = rng.uniform(0.0, 0.3);
    cfg.seed = rng();
    cfg.asynchronous = rng.uniform() < 0.5;
    const auto res = sim::simulate_hybrid(cfg);

    // Conservation.
    ASSERT_EQ(res.tasks_gpu + res.tasks_cpu, cfg.total_tasks) << trial;
    // History bookkeeping.
    std::int64_t hist = 0;
    for (auto h : res.history) hist += h;
    ASSERT_EQ(static_cast<std::uint64_t>(hist), res.tasks_gpu) << trial;
    // Physical lower bound: nothing finishes faster than the critical path
    // of one rank's prep work or the busiest device's service time.
    const double min_prep =
        (1.0 - cfg.jitter) * cfg.prep_s *
        std::floor(static_cast<double>(cfg.total_tasks) /
                   static_cast<double>(cfg.ranks));
    ASSERT_GE(res.makespan_s, min_prep - 1e-9) << trial;
    for (double busy : res.device_busy_s)
      ASSERT_LE(busy, res.makespan_s + 1e-9) << trial;
    // Residency accounts for the whole run.
    if (cfg.devices > 0) {
      double total = 0.0;
      for (double t : res.load0_residency_s) total += t;
      ASSERT_NEAR(total, res.makespan_s, 1e-6 * res.makespan_s) << trial;
    }
  }
}

// -------------------------------------------------- integrator order sweeps

struct MethodCase {
  quad::KernelMethod method;
  std::size_t coarse;
  std::size_t fine;
  double expected_gain;  // error(coarse)/error(fine) lower bound
};

class ConvergenceSweep : public ::testing::TestWithParam<MethodCase> {};

TEST_P(ConvergenceSweep, ErrorDropsAtTheMethodRate) {
  const auto [method, coarse, fine, expected_gain] = GetParam();
  auto f = [](double x) { return std::exp(-x) * (1.0 + std::sin(2.0 * x)); };
  // Reference via a very fine evaluation of the same family.
  const double exact =
      quad::qags(f, 0.0, 2.0, 1e-14, 1e-14).value;
  const double e_coarse =
      std::fabs(quad::kernel_integrate(method, coarse, f, 0.0, 2.0).value -
                exact);
  const double e_fine =
      std::fabs(quad::kernel_integrate(method, fine, f, 0.0, 2.0).value -
                exact);
  EXPECT_GT(e_coarse / std::max(e_fine, 1e-18), expected_gain)
      << quad::to_string(method);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, ConvergenceSweep,
    ::testing::Values(
        MethodCase{quad::KernelMethod::simpson, 8, 16, 8.0},     // ~2^4
        MethodCase{quad::KernelMethod::trapezoid, 8, 16, 3.0},   // ~2^2
        MethodCase{quad::KernelMethod::romberg, 3, 5, 10.0},     // superalg.
        MethodCase{quad::KernelMethod::gauss, 4, 8, 50.0}));     // spectral

// -------------------------------------------------------- physics properties

TEST(PhysicsFuzz, RrcClosedFormAcrossRandomChannels) {
  util::Xoshiro256 rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    const int charge = 1 + static_cast<int>(rng.bounded(26));
    const int n = 1 + static_cast<int>(rng.bounded(5));
    rrc::RrcChannel ch;
    ch.recombining_charge = charge;
    ch.level = atomic::make_levels(charge, {n, false}).back();
    ch.gaunt_correction = false;
    const rrc::PlasmaState p{hspec::util::KeV{rng.uniform(0.05, 5.0)},
                             hspec::util::PerCm3{rng.uniform(0.5, 5.0)},
                             hspec::util::PerCm3{rng.uniform(0.1, 2.0)}};
    const double edge = ch.level.binding_keV;
    const hspec::util::KeV lo{edge * rng.uniform(0.3, 1.5)};
    const hspec::util::KeV hi{std::max(lo.value(), edge) +
                              p.kT_keV.value() * rng.uniform(0.5, 4.0)};
    const double exact =
        rrc::rrc_bin_emissivity_exact_nogaunt(ch, p, lo, hi).value();
    const auto q = rrc::rrc_bin_emissivity_qags(ch, p, lo, hi);
    ASSERT_NEAR(q.value.value(), exact, 1e-7 * std::max(exact, 1e-300))
        << "trial " << trial << " charge " << charge << " n " << n;
  }
}

TEST(PhysicsFuzz, CieDistributionsAcrossTheWholeTable) {
  util::Xoshiro256 rng(31);
  for (int trial = 0; trial < 300; ++trial) {
    const int z = 1 + static_cast<int>(rng.bounded(30));
    const double kT = std::exp(rng.uniform(std::log(1e-3), std::log(30.0)));
    const auto f = atomic::cie_fractions(z, hspec::util::KeV{kT});
    double sum = 0.0;
    for (double x : f) {
      ASSERT_GE(x, 0.0);
      sum += x;
    }
    ASSERT_NEAR(sum, 1.0, 1e-10) << "Z=" << z << " kT=" << kT;
  }
}

TEST(PhysicsFuzz, NeiRhsConservesForRandomStates) {
  util::Xoshiro256 rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    const int z = 1 + static_cast<int>(rng.bounded(30));
    nei::PlasmaHistory h;
    h.ne_cm3 = hspec::util::PerCm3{rng.uniform(0.1, 100.0)};
    const double kT = rng.uniform(0.01, 10.0);
    h.kT_keV = [kT](double) { return kT; };
    nei::NeiSystem sys(z, h);
    std::vector<double> y(sys.dimension());
    double norm = 0.0;
    for (auto& v : y) {
      v = rng.uniform();
      norm += v;
    }
    for (auto& v : y) v /= norm;
    std::vector<double> dydt(y.size());
    sys.rhs(0.0, y, dydt);
    double sum = 0.0;
    for (double d : dydt) sum += d;
    ASSERT_NEAR(sum, 0.0, 1e-12 * h.ne_cm3.value()) << "Z=" << z;
  }
}

TEST(PhysicsFuzz, RatesStayFiniteAndNonNegativeEverywhere) {
  for (int z = 1; z <= 30; ++z) {
    for (double kT : {1e-4, 1e-2, 0.1, 1.0, 10.0, 100.0}) {
      for (int j = 0; j < z; ++j) {
        const double s = atomic::ionization_rate(z, j, hspec::util::KeV{kT}).value();
        ASSERT_TRUE(std::isfinite(s));
        ASSERT_GE(s, 0.0);
      }
      for (int j = 1; j <= z; ++j) {
        const double a = atomic::recombination_rate(z, j, hspec::util::KeV{kT}).value();
        ASSERT_TRUE(std::isfinite(a));
        ASSERT_GT(a, 0.0);
      }
    }
  }
}

}  // namespace
