// Tests for the hybrid NEI driver (§IV-D through the real scheduler) and
// the matrix-exponential propagator / tridiagonal eigensolver.

#include <gtest/gtest.h>

#include <cmath>

#include "atomic/ion_balance.h"
#include "nei/expm_solver.h"
#include "nei/hybrid_nei.h"
#include "ode/tridiag_eigen.h"
#include "util/rng.h"

namespace {

using namespace hspec;
using namespace hspec::nei;
using namespace hspec::util::unit_literals;
using hspec::util::KeV;
using hspec::util::PerCm3;

PlasmaHistory constant_history(double ne, double kT) {
  PlasmaHistory h;
  h.ne_cm3 = PerCm3{ne};
  h.kT_keV = [kT](double) { return kT; };
  return h;
}

// ----------------------------------------------------------- hybrid driver

TEST(NeiHybrid, MatchesCpuOnlyEvolution) {
  const auto hist = constant_history(1.0, 1.5);
  std::vector<PointState> points;
  for (int p = 0; p < 3; ++p)
    points.push_back(PointState::equilibrium({8, 26}, KeV{0.1 + 0.1 * p}));

  // Reference: every point evolved on the CPU path.
  auto reference = points;
  for (auto& st : reference) evolve_point_cpu(st, hist, 0.0, 1e8, 30);

  NeiHybridConfig cfg;
  cfg.ranks = 3;
  cfg.devices = 2;
  const auto result = run_nei_hybrid(points, hist, 0.0, 1e8, 30, cfg);

  ASSERT_EQ(result.states.size(), 3u);
  for (std::size_t p = 0; p < 3; ++p)
    for (std::size_t e = 0; e < reference[p].ions.size(); ++e)
      for (std::size_t j = 0; j < reference[p].ions[e].size(); ++j)
        EXPECT_DOUBLE_EQ(result.states[p].ions[e][j],
                         reference[p].ions[e][j])
            << "point " << p << " element " << e << " state " << j;
}

TEST(NeiHybrid, SchedulerAccounting) {
  const auto hist = constant_history(1.0, 1.0);
  std::vector<PointState> points(4, PointState::equilibrium({8}, 0.2_keV));
  NeiHybridConfig cfg;
  cfg.ranks = 2;
  cfg.devices = 1;
  cfg.max_queue_length = 2;
  const auto result = run_nei_hybrid(points, hist, 0.0, 1e7, 50, cfg);
  // 4 points x ceil(50/10) windows = 20 tasks.
  EXPECT_EQ(result.tasks_total, 20u);
  EXPECT_EQ(result.scheduling.gpu_allocations +
                result.scheduling.cpu_fallbacks,
            20);
  std::int64_t hist_total = 0;
  for (auto h : result.history) hist_total += h;
  EXPECT_EQ(hist_total, result.scheduling.gpu_allocations);
  EXPECT_EQ(result.evolution.tasks, 20u);
  EXPECT_GT(result.evolution.solver_steps, 0u);
}

TEST(NeiHybrid, CpuOnlyWhenNoDevices) {
  const auto hist = constant_history(1.0, 1.0);
  std::vector<PointState> points(2, PointState::equilibrium({8}, 0.2_keV));
  NeiHybridConfig cfg;
  cfg.ranks = 2;
  cfg.devices = 0;
  const auto result = run_nei_hybrid(points, hist, 0.0, 1e7, 20, cfg);
  EXPECT_EQ(result.scheduling.gpu_allocations, 0);
  EXPECT_EQ(result.scheduling.cpu_fallbacks,
            static_cast<std::int64_t>(result.tasks_total));
}

TEST(NeiHybrid, ValidatesConfig) {
  const auto hist = constant_history(1.0, 1.0);
  std::vector<PointState> points(1, PointState::equilibrium({8}, 0.2_keV));
  NeiHybridConfig bad;
  bad.ranks = 0;
  EXPECT_THROW(run_nei_hybrid(points, hist, 0.0, 1.0, 10, bad),
               std::invalid_argument);
}

// ------------------------------------------------------ tridiagonal eigen

TEST(TridiagEigen, DiagonalMatrixIsItsOwnDecomposition) {
  const std::vector<double> diag{3.0, -1.0, 2.0};
  const std::vector<double> off{0.0, 0.0};
  const auto e = ode::tridiagonal_eigen(diag, off);
  EXPECT_DOUBLE_EQ(e.values[0], -1.0);
  EXPECT_DOUBLE_EQ(e.values[1], 2.0);
  EXPECT_DOUBLE_EQ(e.values[2], 3.0);
}

TEST(TridiagEigen, TwoByTwoAnalytic) {
  // [[a, b], [b, c]]: eigenvalues (a+c)/2 +- sqrt(((a-c)/2)^2 + b^2).
  const std::vector<double> diag{1.0, 3.0};
  const std::vector<double> off{2.0};
  const auto e = ode::tridiagonal_eigen(diag, off);
  const double mid = 2.0;
  const double rad = std::sqrt(1.0 + 4.0);
  EXPECT_NEAR(e.values[0], mid - rad, 1e-12);
  EXPECT_NEAR(e.values[1], mid + rad, 1e-12);
}

TEST(TridiagEigen, ReconstructsRandomMatrices) {
  util::Xoshiro256 rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 2 + rng.bounded(14);
    std::vector<double> diag(n);
    std::vector<double> off(n - 1);
    for (auto& v : diag) v = rng.uniform(-2.0, 2.0);
    for (auto& v : off) v = rng.uniform(-1.0, 1.0);
    const auto e = ode::tridiagonal_eigen(diag, off);

    // Eigenvalues ascend; vectors orthonormal; A v = lambda v.
    for (std::size_t j = 0; j + 1 < n; ++j)
      EXPECT_LE(e.values[j], e.values[j + 1] + 1e-12);
    for (std::size_t j = 0; j < n; ++j) {
      double norm = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        norm += e.vectors(i, j) * e.vectors(i, j);
      EXPECT_NEAR(norm, 1.0, 1e-10);
      for (std::size_t i = 0; i < n; ++i) {
        double av = diag[i] * e.vectors(i, j);
        if (i > 0) av += off[i - 1] * e.vectors(i - 1, j);
        if (i + 1 < n) av += off[i] * e.vectors(i + 1, j);
        EXPECT_NEAR(av, e.values[j] * e.vectors(i, j), 1e-9)
            << "trial " << trial << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(TridiagEigen, TraceAndSizeChecks) {
  const std::vector<double> diag{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> off{0.5, 0.5, 0.5};
  const auto e = ode::tridiagonal_eigen(diag, off);
  double trace = 0.0;
  for (double v : e.values) trace += v;
  EXPECT_NEAR(trace, 10.0, 1e-10);  // similarity preserves the trace
  EXPECT_THROW(ode::tridiagonal_eigen(diag, {off.data(), 2}),
               std::invalid_argument);
  EXPECT_THROW(ode::tridiagonal_eigen({}, {}), std::invalid_argument);
}

// ------------------------------------------------------- expm propagator

TEST(Expm, EigenvaluesNonPositiveWithOneZero) {
  const ExpmPropagator prop(8, KeV{0.2}, PerCm3{2.0});
  const auto& vals = prop.eigenvalues();
  ASSERT_EQ(vals.size(), 9u);
  for (double v : vals) EXPECT_LE(v, 1e-9);
  // The conservation null vector: exactly one (the largest) ~ 0.
  EXPECT_NEAR(vals.back(), 0.0, 1e-9 * std::fabs(vals.front()));
  EXPECT_LT(vals[vals.size() - 2], -1e-16);
}

TEST(Expm, ZeroTimeIsIdentity) {
  const ExpmPropagator prop(8, KeV{0.2}, PerCm3{1.0});
  const auto y0 = atomic::cie_fractions(8, KeV{0.2});
  const auto y = prop.propagate(y0, 0.0);
  for (std::size_t i = 0; i < y0.size(); ++i)
    EXPECT_NEAR(y[i], y0[i], 1e-10);
}

TEST(Expm, ConservesTotalDensity) {
  const ExpmPropagator prop(8, KeV{0.2}, PerCm3{3.0});
  const auto y0 = atomic::cie_fractions(8, KeV{0.1});
  for (double t : {1e6, 1e9, 1e12}) {
    const auto y = prop.propagate(y0, t);
    double sum = 0.0;
    for (double v : y) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-8) << "t=" << t;
  }
}

TEST(Expm, InfiniteTimeLimitIsCie) {
  const double kT = 0.2;
  const ExpmPropagator prop(8, KeV{kT}, PerCm3{1.0});
  const auto y0 = atomic::cie_fractions(8, KeV{0.05});
  const auto y_inf = prop.propagate(y0, 1e16);
  const auto cie = atomic::cie_fractions(8, KeV{kT});
  for (std::size_t i = 0; i < cie.size(); ++i)
    EXPECT_NEAR(y_inf[i], cie[i], 1e-6) << "state " << i;
  // And the null-space eigenvector agrees directly.
  const auto eq = prop.equilibrium();
  for (std::size_t i = 0; i < cie.size(); ++i)
    EXPECT_NEAR(eq[i], cie[i], 1e-8) << "state " << i;
}

TEST(Expm, AgreesWithLsodaMidRelaxation) {
  // Independent-oracle test: the exact propagator and the LSODA time
  // stepper must agree in the middle of a shock relaxation.
  const double kT = 0.3;
  const double ne = 1.0;
  const double t = 1e11;
  const ExpmPropagator prop(6, KeV{kT}, PerCm3{ne});
  const auto y0 = atomic::cie_fractions(6, KeV{0.05});
  const auto exact = prop.propagate(y0, t);

  auto st = PointState::equilibrium({6}, 0.05_keV);
  EvolveOptions opt;
  opt.solver.base.rtol = 1e-9;
  opt.solver.base.atol = 1e-14;
  opt.renormalize_each_step = false;
  evolve_point_cpu(st, constant_history(ne, kT), 0.0, t / 20.0, 20, opt);

  for (std::size_t i = 0; i < exact.size(); ++i)
    EXPECT_NEAR(st.ions[0][i], exact[i], 5e-5) << "state " << i;
}

TEST(Expm, PropagationIsASemigroup) {
  // exp(A (t1+t2)) y = exp(A t2) exp(A t1) y.
  const ExpmPropagator prop(6, KeV{0.3}, PerCm3{2.0});
  const auto y0 = atomic::cie_fractions(6, KeV{0.1});
  const auto one_hop = prop.propagate(y0, 7e9);
  const auto two_hop = prop.propagate(prop.propagate(y0, 3e9), 4e9);
  for (std::size_t i = 0; i < y0.size(); ++i)
    EXPECT_NEAR(one_hop[i], two_hop[i], 1e-9);
}

TEST(Expm, ValidatesInput) {
  EXPECT_THROW(ExpmPropagator(0, KeV{1.0}, PerCm3{1.0}), std::invalid_argument);
  EXPECT_THROW(ExpmPropagator(8, KeV{-1.0}, PerCm3{1.0}), std::invalid_argument);
  const ExpmPropagator prop(8, KeV{0.2}, PerCm3{1.0});
  std::vector<double> wrong(3, 0.0);
  EXPECT_THROW(prop.propagate(wrong, 1.0), std::invalid_argument);
  const auto y0 = atomic::cie_fractions(8, KeV{0.2});
  EXPECT_THROW(prop.propagate(y0, -1.0), std::invalid_argument);
}

TEST(Expm, RefusesExtremeDynamicRange) {
  // Fe at coronal temperatures spans hundreds of e-folds between charge
  // states: the symmetrized propagator must refuse rather than silently
  // lose the minority states (use LSODA there).
  EXPECT_THROW(ExpmPropagator(26, KeV{0.05}, PerCm3{1.0}), std::domain_error);
  EXPECT_THROW(ExpmPropagator(8, KeV{2.0}, PerCm3{1.0}), std::domain_error);
}

}  // namespace
