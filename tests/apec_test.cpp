// Tests for the APEC-style spectral calculator: parameter space, energy
// grids, spectra, continuum, lines, populations, and the serial driver.

#include <gtest/gtest.h>

#include <cmath>

#include "apec/calculator.h"
#include "apec/continuum.h"
#include "apec/energy_grid.h"
#include "apec/lines.h"
#include "apec/parameter_space.h"
#include "apec/spectrum.h"
#include "atomic/constants.h"
#include "quad/qags.h"

namespace {

using namespace hspec;
using namespace hspec::apec;
using namespace hspec::util::unit_literals;
using hspec::util::KeV;

// ------------------------------------------------------------ parameter space

TEST(Axis, LinearAndLogSampling) {
  Axis lin{1.0, 3.0, 3, false};
  EXPECT_DOUBLE_EQ(lin.value(0), 1.0);
  EXPECT_DOUBLE_EQ(lin.value(1), 2.0);
  EXPECT_DOUBLE_EQ(lin.value(2), 3.0);
  Axis lg{1.0, 100.0, 3, true};
  EXPECT_DOUBLE_EQ(lg.value(1), 10.0);
  EXPECT_THROW(lin.value(3), std::out_of_range);
}

TEST(Axis, SinglePointAxisIsConstant) {
  Axis a{5.0, 9.0, 1, false};
  EXPECT_DOUBLE_EQ(a.value(0), 5.0);
}

TEST(ParameterSpace, SizeAndIndexing) {
  ParameterSpace ps({0.1, 1.0, 4, false}, {1.0, 100.0, 3, true},
                    {0.0, 10.0, 2, false});
  EXPECT_EQ(ps.size(), 24u);
  const GridPoint p0 = ps.point(0);
  EXPECT_DOUBLE_EQ(p0.kT_keV, 0.1);
  EXPECT_DOUBLE_EQ(p0.ne_cm3, 1.0);
  EXPECT_DOUBLE_EQ(p0.time_s, 0.0);
  const GridPoint last = ps.point(23);
  EXPECT_DOUBLE_EQ(last.kT_keV, 1.0);
  EXPECT_DOUBLE_EQ(last.ne_cm3, 100.0);
  EXPECT_DOUBLE_EQ(last.time_s, 10.0);
  EXPECT_EQ(last.index, 23u);
  EXPECT_THROW(ps.point(24), std::out_of_range);
  EXPECT_EQ(ps.all_points().size(), 24u);
}

TEST(ParameterSpace, SplitCoversAllPointsOnce) {
  ParameterSpace ps({0.1, 1.0, 5, false}, {1.0, 1.0, 5, false},
                    {0.0, 0.0, 1, false});
  const auto ranges = ps.split(4);  // 25 points over 4 parts: 7,6,6,6
  ASSERT_EQ(ranges.size(), 4u);
  std::size_t covered = 0;
  std::size_t prev_end = 0;
  for (const auto& [b, e] : ranges) {
    EXPECT_EQ(b, prev_end);
    covered += e - b;
    prev_end = e;
  }
  EXPECT_EQ(covered, 25u);
  EXPECT_EQ(ranges[0].second - ranges[0].first, 7u);
}

// ----------------------------------------------------------------- energy grid

TEST(EnergyGrid, LinearEdges) {
  const auto g = EnergyGrid::linear(1.0, 2.0, 4);
  EXPECT_EQ(g.bin_count(), 4u);
  EXPECT_DOUBLE_EQ(g.lo(0), 1.0);
  EXPECT_DOUBLE_EQ(g.hi(3), 2.0);
  EXPECT_DOUBLE_EQ(g.width(1), 0.25);
  EXPECT_DOUBLE_EQ(g.center(0), 1.125);
}

TEST(EnergyGrid, LogarithmicRatiosConstant) {
  const auto g = EnergyGrid::logarithmic(0.1, 10.0, 10);
  const double r0 = g.edge(1) / g.edge(0);
  for (std::size_t i = 1; i < 10; ++i)
    EXPECT_NEAR(g.edge(i + 1) / g.edge(i), r0, 1e-12);
}

TEST(EnergyGrid, WavelengthGridMatchesHc) {
  const auto g = EnergyGrid::wavelength(1.0, 50.0, 100);
  // Ascending in energy: first edge corresponds to 50 A.
  EXPECT_NEAR(g.min_energy(), atomic::kHCKeVAngstrom / 50.0, 1e-12);
  EXPECT_NEAR(g.max_energy(), atomic::kHCKeVAngstrom / 1.0, 1e-9);
  // Center wavelengths decrease with bin index.
  EXPECT_GT(g.center_wavelength(0), g.center_wavelength(99));
}

TEST(EnergyGrid, LocateFindsContainingBin) {
  const auto g = EnergyGrid::linear(0.0 + 1e-9, 10.0, 10);
  EXPECT_EQ(g.locate(0.5), 0u);
  EXPECT_EQ(g.locate(9.99), 9u);
  EXPECT_EQ(g.locate(10.5), g.bin_count());
  EXPECT_EQ(g.locate(1e-10), g.bin_count());
}

TEST(EnergyGrid, RejectsBadConstruction) {
  EXPECT_THROW(EnergyGrid::linear(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(EnergyGrid::linear(1.0, 2.0, 0), std::invalid_argument);
  EXPECT_THROW(EnergyGrid::logarithmic(-1.0, 2.0, 4), std::invalid_argument);
  EXPECT_THROW(EnergyGrid::wavelength(50.0, 1.0, 4), std::invalid_argument);
}

// -------------------------------------------------------------------- spectrum

TEST(Spectrum, AccumulateAndScale) {
  const auto g = EnergyGrid::linear(1.0, 2.0, 4);
  Spectrum a(g);
  Spectrum b(g);
  a[0] = 1.0;
  b[0] = 2.0;
  b[3] = 4.0;
  a += b;
  EXPECT_DOUBLE_EQ(a[0], 3.0);
  EXPECT_DOUBLE_EQ(a[3], 4.0);
  a *= 0.5;
  EXPECT_DOUBLE_EQ(a[0], 1.5);
  EXPECT_DOUBLE_EQ(a.total(), 3.5);
  EXPECT_DOUBLE_EQ(a.peak(), 2.0);
}

TEST(Spectrum, NormalizedFluxPeaksAtOne) {
  const auto g = EnergyGrid::linear(1.0, 2.0, 3);
  Spectrum s(g);
  s[1] = 8.0;
  s[2] = 4.0;
  const auto norm = s.normalized_flux();
  EXPECT_DOUBLE_EQ(norm[1], 1.0);
  EXPECT_DOUBLE_EQ(norm[2], 0.5);
  EXPECT_DOUBLE_EQ(norm[0], 0.0);
}

TEST(Spectrum, WavelengthSeriesSorted) {
  const auto g = EnergyGrid::wavelength(10.0, 20.0, 16);
  Spectrum s(g);
  const auto series = s.wavelength_series();
  ASSERT_EQ(series.size(), 16u);
  for (std::size_t i = 0; i + 1 < series.size(); ++i)
    EXPECT_LT(series[i].first, series[i + 1].first);
}

TEST(Spectrum, GridMismatchThrows) {
  const auto g1 = EnergyGrid::linear(1.0, 2.0, 4);
  const auto g2 = EnergyGrid::linear(1.0, 2.0, 5);
  Spectrum a(g1);
  Spectrum b(g2);
  EXPECT_THROW(a += b, std::invalid_argument);
}

// ------------------------------------------------------------------- continuum

TEST(FreeFree, BinAccumulationMatchesQuadrature) {
  const auto g = EnergyGrid::linear(0.5, 5.0, 16);
  Spectrum s(g);
  const FreeFreeState st{1.3_keV, 2.0_per_cm3, 3.0_per_cm3};
  accumulate_free_free(st, s);
  // Compare one bin against adaptive quadrature of the density, allowing the
  // bin-center Gaunt approximation a small margin.
  const std::size_t b = 7;
  const auto q = quad::qags(
      [&](double e) { return free_free_power_density(st, KeV{e}).value(); },
      g.lo(b), g.hi(b), 1e-14, 1e-10);
  EXPECT_NEAR(s[b], q.value, 0.02 * q.value);
}

TEST(FreeFree, ExponentialCutoff) {
  const FreeFreeState st{1.0_keV, 1.0_per_cm3, 1.0_per_cm3};
  EXPECT_GT(free_free_power_density(st, 0.5_keV),
            free_free_power_density(st, 5.0_keV));
  EXPECT_DOUBLE_EQ(free_free_power_density(st, 0.0_keV).value(), 0.0);
  const FreeFreeState bad{0.0_keV, 1.0_per_cm3, 1.0_per_cm3};
  EXPECT_THROW(free_free_power_density(bad, 1.0_keV), std::invalid_argument);
}

TEST(FreeFree, GauntAtLeastOne) {
  EXPECT_GE(free_free_gaunt(5.0_keV, 1.0_keV), 1.0);
  EXPECT_GE(free_free_gaunt(0.1_keV, 1.0_keV), 1.0);
}

// ----------------------------------------------------------------------- lines

TEST(Lines, HydrogenicSeriesEnergies) {
  atomic::IonUnit ion{8, 8};  // hydrogen-like oxygen
  const auto lines =
      make_lines(ion, {1.0_keV, 1.0_per_cm3, 1.0_per_cm3}, 3);
  // Transitions: 2->1, 3->1, 3->2.
  ASSERT_EQ(lines.size(), 3u);
  const double scale = atomic::kRydbergKeV * 64.0;
  EXPECT_NEAR(lines[0].energy_keV, scale * (1.0 - 0.25), 1e-12);
  EXPECT_NEAR(lines[1].energy_keV, scale * (1.0 - 1.0 / 9.0), 1e-12);
  EXPECT_NEAR(lines[2].energy_keV, scale * (0.25 - 1.0 / 9.0), 1e-12);
}

TEST(Lines, NoLinesFromNeutralOrFreeFree) {
  const LinePlasma plasma{1.0_keV, 1.0_per_cm3, 1.0_per_cm3};
  EXPECT_TRUE(make_lines({8, 0}, plasma).empty());
  EXPECT_TRUE(make_lines({0, 0}, plasma).empty());
}

TEST(Lines, DepositConservesEmissivity) {
  const auto g = EnergyGrid::linear(0.1, 10.0, 400);
  Spectrum s(g);
  const EmissionLine line{5.0, 3.0, 0.05};
  deposit_line(line, s);
  EXPECT_NEAR(s.total(), line.emissivity, 1e-6 * line.emissivity);
  // Peak bin is at the line center.
  const std::size_t peak_bin = g.locate(5.0);
  EXPECT_DOUBLE_EQ(s[peak_bin], s.peak());
}

TEST(Lines, ZeroWidthThrows) {
  const auto g = EnergyGrid::linear(0.1, 10.0, 10);
  Spectrum s(g);
  EXPECT_THROW(deposit_line({5.0, 1.0, 0.0}, s), std::invalid_argument);
}

// ----------------------------------------------------------------- populations

TEST(Populations, ElectronBudgetConsistent) {
  atomic::AtomicDatabase db;
  const GridPoint pt{1.0, 10.0, 0.0, 0};
  const auto pops = solve_populations(db, pt);
  EXPECT_GT(pops.n_h_cm3.value(), 0.0);
  // Recompute electrons from the ion densities: must reproduce ne.
  double electrons = 0.0;
  for (int z = 1; z <= 30; ++z)
    for (int j = 0; j <= z; ++j)
      electrons += static_cast<double>(j) * pops.ion_density(z, j).value();
  EXPECT_NEAR(electrons, pt.ne_cm3, 1e-6 * pt.ne_cm3);
  EXPECT_GT(pops.z2_weighted_density_cm3.value(), 0.0);
}

TEST(Populations, HotterPlasmaNeedsFewerHydrogenNuclei) {
  atomic::AtomicDatabase db;
  const auto cold = solve_populations(db, {0.02, 1.0, 0.0, 0});
  const auto hot = solve_populations(db, {5.0, 1.0, 0.0, 0});
  // More ionization per nucleus at high T -> fewer nuclei for the same ne.
  EXPECT_GT(cold.n_h_cm3, hot.n_h_cm3);
}

TEST(Populations, NonPositiveDensityThrows) {
  atomic::AtomicDatabase db;
  EXPECT_THROW(solve_populations(db, {1.0, 0.0, 0.0, 0}),
               std::invalid_argument);
}

// ------------------------------------------------------------------ calculator

class CalculatorTest : public ::testing::Test {
 protected:
  CalculatorTest()
      : db_(small_config()), grid_(EnergyGrid::wavelength(5.0, 40.0, 64)) {}

  static atomic::DatabaseConfig small_config() {
    atomic::DatabaseConfig cfg;
    cfg.max_z = 8;
    cfg.levels = {2, true};  // 3 levels per ion
    return cfg;
  }

  atomic::AtomicDatabase db_;
  EnergyGrid grid_;
};

TEST_F(CalculatorTest, PopulatedIonsAreASmallSubset) {
  CalcOptions opt;
  SpectrumCalculator calc(db_, grid_, opt);
  const auto pops = solve_populations(db_, {0.3, 1.0, 0.0, 0});
  const auto populated = calc.populated_ions(pops);
  EXPECT_GT(populated.size(), 0u);
  EXPECT_LT(populated.size(), db_.ion_count());
  // Free-free always survives when enabled.
  bool has_ff = false;
  for (const auto& ion : populated) has_ff |= ion.is_free_free();
  EXPECT_TRUE(has_ff);
}

TEST_F(CalculatorTest, SerialSpectrumIsNonNegativeAndNonTrivial) {
  SpectrumCalculator calc(db_, grid_);
  const Spectrum s = calc.calculate({0.4, 1.0, 0.0, 0});
  EXPECT_GT(s.total(), 0.0);
  for (std::size_t b = 0; b < s.bin_count(); ++b) EXPECT_GE(s[b], 0.0);
}

TEST_F(CalculatorTest, IonAccumulationEqualsSumOfItsLevelsPlusLines) {
  CalcOptions opt;
  opt.integration.adaptive = false;
  SpectrumCalculator calc(db_, grid_, opt);
  const auto pops = solve_populations(db_, {0.5, 1.0, 0.0, 0});
  const atomic::IonUnit ion{8, 6};

  Spectrum whole(grid_);
  calc.accumulate_ion(ion, pops, whole);

  Spectrum parts(grid_);
  for (std::size_t li = 0; li < db_.level_count_for(ion); ++li)
    calc.accumulate_level(ion, li, pops, parts);
  calc.accumulate_ion_lines(ion, pops, parts);

  for (std::size_t b = 0; b < grid_.bin_count(); ++b)
    EXPECT_NEAR(whole[b], parts[b], 1e-12 * std::max(1.0, std::fabs(whole[b])));
}

TEST_F(CalculatorTest, AdaptiveAndKernelPathsAgreeClosely) {
  CalcOptions qags_opt;
  qags_opt.integration.adaptive = true;
  qags_opt.include_lines = false;
  qags_opt.include_free_free = false;
  CalcOptions simpson_opt = qags_opt;
  simpson_opt.integration.adaptive = false;

  SpectrumCalculator a(db_, grid_, qags_opt);
  SpectrumCalculator b(db_, grid_, simpson_opt);
  const GridPoint pt{0.5, 1.0, 0.0, 0};
  const Spectrum sa = a.calculate(pt);
  const Spectrum sb = b.calculate(pt);
  ASSERT_GT(sa.total(), 0.0);
  // Fig. 8 scale: sub-0.01% disagreement overall.
  EXPECT_NEAR(sb.total() / sa.total(), 1.0, 1e-3);
}

TEST_F(CalculatorTest, FreeFreeToggleChangesSpectrum) {
  CalcOptions with;
  CalcOptions without;
  without.include_free_free = false;
  SpectrumCalculator a(db_, grid_, with);
  SpectrumCalculator c(db_, grid_, without);
  const GridPoint pt{0.4, 1.0, 0.0, 0};
  EXPECT_GT(a.calculate(pt).total(), c.calculate(pt).total());
}

TEST_F(CalculatorTest, LevelIndexOutOfRangeThrows) {
  SpectrumCalculator calc(db_, grid_);
  const auto pops = solve_populations(db_, {0.5, 1.0, 0.0, 0});
  Spectrum s(grid_);
  EXPECT_THROW(calc.accumulate_level({8, 6}, 99, pops, s), std::out_of_range);
}

}  // namespace
