// Tests for the extension modules: coronal level populations, the INI
// config reader + parameter-space builder, the cluster simulator, and the
// NEI trajectory builders.

#include <gtest/gtest.h>

#include <cmath>

#include <numbers>

#include "apec/calculator.h"
#include "apec/level_population.h"
#include "apec/parameter_space.h"
#include "atomic/constants.h"
#include "atomic/ion_balance.h"
#include "nei/evolve.h"
#include "nei/trajectory.h"
#include "sim/cluster_sim.h"
#include "util/config.h"

namespace {

using namespace hspec;
using namespace hspec::util::unit_literals;
using hspec::util::KeV;
using hspec::util::PerCm3;

// -------------------------------------------------------- level populations

TEST(LevelPopulation, OscillatorStrengthsDecreaseAlongTheSeries) {
  // f(1->2) > f(1->3) > ... (Kramers scaling).
  double prev = 1e300;
  for (int n = 2; n <= 6; ++n) {
    const double f = apec::kramers_oscillator_strength(1, n);
    EXPECT_GT(f, 0.0);
    EXPECT_LT(f, prev) << "n=" << n;
    prev = f;
  }
  EXPECT_THROW(apec::kramers_oscillator_strength(2, 2), std::invalid_argument);
}

TEST(LevelPopulation, LymanAlphaEinsteinAOrderOfMagnitude) {
  // Hydrogen 2->1 ~ 5e8 1/s (our Kramers-f calibration hits the decade).
  const double a = apec::einstein_a(1, 2, 1).value();
  EXPECT_GT(a, 1e8);
  EXPECT_LT(a, 5e9);
  // Z^4 scaling through dE^2: O+8 Ly-alpha ~ 4096x hydrogen.
  EXPECT_NEAR(apec::einstein_a(8, 2, 1).value() / a, 4096.0, 200.0);
}

TEST(LevelPopulation, ExcitationRateHasBoltzmannCutoff) {
  const double cold = apec::collisional_excitation_rate(8, 2, 0.05_keV).value();
  const double hot = apec::collisional_excitation_rate(8, 2, 2.0_keV).value();
  EXPECT_GT(hot, cold);
  EXPECT_GT(cold, 0.0);
  EXPECT_THROW(apec::collisional_excitation_rate(8, 2, 0.0_keV),
               std::invalid_argument);
}

TEST(LevelPopulation, CoronalPopulationsScaleWithDensityAndStaySmall) {
  const auto lo = apec::coronal_populations(8, 1.0_keV, 1.0_per_cm3, 5);
  const auto hi = apec::coronal_populations(8, 1.0_keV, 100.0_per_cm3, 5);
  ASSERT_EQ(lo.size(), 4u);  // n = 2..5
  for (std::size_t i = 0; i < lo.size(); ++i) {
    EXPECT_NEAR(hi[i] / lo[i], 100.0, 1e-6);  // linear in ne
    EXPECT_LT(lo[i], 1.0);  // coronal regime: excited states underpopulated
  }
  EXPECT_THROW(apec::coronal_populations(8, 1.0_keV, 1.0_per_cm3, 1),
               std::invalid_argument);
}

TEST(LevelPopulation, CoronalLineListResonanceLinesDominate) {
  const atomic::IonUnit ion{8, 8};
  const auto lines =
      apec::make_lines_coronal(ion, {1.0_keV, 1.0_per_cm3, 1.0_per_cm3}, 4);
  // Transitions: (2,3,4 -> below): 1 + 2 + 3 = 6 lines.
  ASSERT_EQ(lines.size(), 6u);
  // Ly-alpha (2->1, the first entry) outshines Ly-beta (3->1).
  const double ly_alpha = lines[0].emissivity;
  double ly_beta = 0.0;
  for (const auto& l : lines)
    if (std::fabs(l.energy_keV -
                  (atomic::kRydbergKeV * 64.0 * (1.0 - 1.0 / 9.0))) < 1e-6)
      ly_beta = l.emissivity;
  EXPECT_GT(ly_alpha, ly_beta);
  EXPECT_GT(ly_beta, 0.0);
}

TEST(LevelPopulation, CoronalOptionChangesTheSpectrum) {
  atomic::DatabaseConfig db_cfg;
  db_cfg.max_z = 8;
  db_cfg.levels = {2, true};
  atomic::AtomicDatabase db(db_cfg);
  const auto grid = apec::EnergyGrid::wavelength(5.0, 40.0, 64);
  apec::CalcOptions boltz;
  boltz.integration.adaptive = false;
  apec::CalcOptions coronal = boltz;
  coronal.coronal_lines = true;
  const auto a =
      apec::SpectrumCalculator(db, grid, boltz).calculate({0.4, 1.0, 0.0, 0});
  const auto b = apec::SpectrumCalculator(db, grid, coronal)
                     .calculate({0.4, 1.0, 0.0, 0});
  EXPECT_GT(a.total(), 0.0);
  EXPECT_GT(b.total(), 0.0);
  EXPECT_NE(a.total(), b.total());
}

// ------------------------------------------------------------------- config

TEST(Config, ParsesSectionsCommentsAndTypes) {
  const auto cfg = util::Config::parse(R"(
# comment
top = 1
[temperature]
lo = 0.1
hi = 2.0
count = 8
log = true
; another comment
[density]
lo = 1.0
)");
  EXPECT_EQ(cfg.get_int("top", 0), 1);
  EXPECT_DOUBLE_EQ(cfg.get_double("temperature.lo", 0.0), 0.1);
  EXPECT_EQ(cfg.get_int("temperature.count", 0), 8);
  EXPECT_TRUE(cfg.get_bool("temperature.log", false));
  EXPECT_FALSE(cfg.has("density.hi"));
  EXPECT_DOUBLE_EQ(cfg.get_double("density.hi", 9.0), 9.0);
}

TEST(Config, RejectsMalformedInput) {
  EXPECT_THROW(util::Config::parse("[unterminated\n"), std::invalid_argument);
  EXPECT_THROW(util::Config::parse("novalue\n"), std::invalid_argument);
  EXPECT_THROW(util::Config::parse("= 1\n"), std::invalid_argument);
  const auto cfg = util::Config::parse("x = abc\n");
  EXPECT_THROW(cfg.get_double("x", 0.0), std::invalid_argument);
  EXPECT_THROW(cfg.get_int("x", 0), std::invalid_argument);
  EXPECT_THROW(cfg.get_bool("x", false), std::invalid_argument);
  EXPECT_THROW(util::Config::load("/nonexistent/path.ini"),
               std::runtime_error);
}

TEST(Config, BuildsParameterSpace) {
  const auto cfg = util::Config::parse(R"(
[temperature]
lo = 0.1
hi = 10.0
count = 3
log = true
[density]
lo = 1.0
hi = 2.0
count = 2
)");
  const auto space = apec::parameter_space_from_config(cfg);
  EXPECT_EQ(space.size(), 6u);  // 3 x 2 x 1 (time defaults to one point)
  EXPECT_DOUBLE_EQ(space.point(1).kT_keV, 1.0);  // log axis midpoint
  EXPECT_DOUBLE_EQ(space.point(0).ne_cm3, 1.0);
  EXPECT_DOUBLE_EQ(space.point(0).time_s, 0.0);
}

// ------------------------------------------------------------- cluster sim

TEST(ClusterSim, SplitsWorkAndScalesNearLinearly) {
  sim::ClusterSimConfig cfg;
  cfg.node.ranks = 24;
  cfg.node.devices = 2;
  cfg.node.max_queue_length = 10;
  cfg.node.total_tasks = 8 * 24 * 496;  // 8 nodes' worth of grid points
  cfg.node.prep_s = 0.115;
  cfg.node.cpu_task_s = 1.47;
  cfg.node.gpu_task_s = 0.008;
  cfg.nodes = 1;
  const auto one = sim::simulate_cluster(cfg);
  cfg.nodes = 8;
  const auto eight = sim::simulate_cluster(cfg);
  EXPECT_EQ(eight.per_node.size(), 8u);
  EXPECT_EQ(eight.tasks_gpu() + eight.tasks_cpu(), cfg.node.total_tasks);
  const double scaling = one.makespan_s / eight.makespan_s;
  EXPECT_GT(scaling, 6.5);   // near-linear
  EXPECT_LE(scaling, 8.05);
  EXPECT_LT(eight.imbalance(), 0.05);  // equal subspaces hold under jitter
}

TEST(ClusterSim, UnevenTaskCountsStillComplete) {
  sim::ClusterSimConfig cfg;
  cfg.nodes = 3;
  cfg.node.ranks = 4;
  cfg.node.devices = 1;
  cfg.node.total_tasks = 100;  // 34 + 33 + 33
  cfg.node.prep_s = 0.01;
  cfg.node.cpu_task_s = 0.2;
  cfg.node.gpu_task_s = 0.002;
  const auto res = sim::simulate_cluster(cfg);
  EXPECT_EQ(res.tasks_gpu() + res.tasks_cpu(), 100u);
  EXPECT_GE(res.makespan_s, res.ideal_makespan_s);
}

TEST(ClusterSim, ValidatesNodeCount) {
  sim::ClusterSimConfig cfg;
  cfg.nodes = 0;
  EXPECT_THROW(sim::simulate_cluster(cfg), std::invalid_argument);
}

// ------------------------------------------------------------- trajectories

TEST(Trajectory, ShockStepsAtTheRightTime) {
  const auto h = nei::shock_heating(1.0_per_cm3, 0.1_keV, 2.0_keV, 100.0_s);
  EXPECT_DOUBLE_EQ(h.kT_keV(0.0), 0.1);
  EXPECT_DOUBLE_EQ(h.kT_keV(99.9), 0.1);
  EXPECT_DOUBLE_EQ(h.kT_keV(100.0), 2.0);
  EXPECT_DOUBLE_EQ(h.ne_cm3.value(), 1.0);
}

TEST(Trajectory, ExponentialDecayEndpoints) {
  const auto h = nei::exponential_decay(2.0_per_cm3, 4.0_keV, 1.0_keV, 10.0_s);
  EXPECT_DOUBLE_EQ(h.kT_keV(0.0), 4.0);
  EXPECT_NEAR(h.kT_keV(10.0), 1.0 + 3.0 / std::numbers::e, 1e-12);
  EXPECT_NEAR(h.kT_keV(1e6), 1.0, 1e-12);
}

TEST(Trajectory, SampledHistoryInterpolatesAndClamps) {
  const auto h = nei::sampled_history(1.0_per_cm3, {{0.0, 1.0}, {10.0, 3.0},
                                                    {20.0, 2.0}});
  EXPECT_DOUBLE_EQ(h.kT_keV(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(h.kT_keV(5.0), 2.0);
  EXPECT_DOUBLE_EQ(h.kT_keV(15.0), 2.5);
  EXPECT_DOUBLE_EQ(h.kT_keV(99.0), 2.0);
}

TEST(Trajectory, Validation) {
  EXPECT_THROW(nei::constant_conditions(0.0_per_cm3, 1.0_keV),
               std::invalid_argument);
  EXPECT_THROW(nei::shock_heating(1.0_per_cm3, -1.0_keV, 2.0_keV),
               std::invalid_argument);
  EXPECT_THROW(nei::exponential_decay(1.0_per_cm3, 1.0_keV, 1.0_keV, 0.0_s),
               std::invalid_argument);
  EXPECT_THROW(nei::sampled_history(1.0_per_cm3, {}), std::invalid_argument);
  EXPECT_THROW(nei::sampled_history(1.0_per_cm3, {{1.0, 1.0}, {1.0, 2.0}}),
               std::invalid_argument);
}

TEST(Trajectory, DrivesNeiEvolution) {
  // A decaying-temperature trajectory: the plasma stays over-ionized
  // relative to instantaneous CIE while cooling (the classic NEI fossil).
  const auto h =
      nei::exponential_decay(1.0_per_cm3, 2.0_keV, 0.1_keV, 1e10_s);
  auto st = nei::PointState::equilibrium({8}, 2.0_keV);
  nei::evolve_point_cpu(st, h, 0.0, 1e9, 40);
  EXPECT_LT(st.conservation_error(), 1e-12);
  auto mean_charge = [](const std::vector<double>& f) {
    double m = 0.0;
    for (std::size_t j = 0; j < f.size(); ++j) m += j * f[j];
    return m;
  };
  const double now_kt = h.kT_keV(40.0 * 1e9);
  const auto cie_now = atomic::cie_fractions(8, KeV{now_kt});
  EXPECT_GT(mean_charge(st.ions[0]), mean_charge(cie_now) + 0.05);
}

}  // namespace
