// Tests for src/util: statistics, histogram, table, cli, rng, function_ref.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "util/cli.h"
#include "util/function_ref.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/statistics.h"
#include "util/table.h"

namespace {

using namespace hspec::util;

// ---------------------------------------------------------------- RunningStats

TEST(RunningStats, EmptyIsNeutral) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(0.1 * i) * 10.0 + i * 0.01;
    (i < 37 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  const std::vector<double> xs{1.0};
  EXPECT_THROW(percentile(xs, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 101.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(percentile(xs, 99.0), 1.0);
}

TEST(MaxRelativeError, Basics) {
  const std::vector<double> a{1.0, 2.0, 0.0};
  const std::vector<double> b{1.0, 2.2, 0.0};
  EXPECT_NEAR(max_relative_error(a, b), 0.2 / 2.2, 1e-12);
  EXPECT_THROW(max_relative_error(a, {b.data(), 2}), std::invalid_argument);
}

TEST(Rms, KnownValue) {
  const std::vector<double> xs{3.0, 4.0};
  EXPECT_NEAR(rms(xs), std::sqrt(12.5), 1e-12);
  EXPECT_DOUBLE_EQ(rms({}), 0.0);
}

// ------------------------------------------------------------------- Histogram

TEST(Histogram, BinsAndFractions) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_DOUBLE_EQ(h.total(), 10.0);
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_DOUBLE_EQ(h.count(b), 1.0);
    EXPECT_DOUBLE_EQ(h.fraction(b), 0.1);
  }
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_center(3), 3.5);
}

TEST(Histogram, ClampsOutOfRangeButCounts) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(2.0);
  h.add(0.5);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);  // clamped low
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);  // clamped high
}

TEST(Histogram, WeightedSamplesAndRanges) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5, 2.0);
  h.add(1.5, 1.0);
  h.add(2.5, 1.0);
  EXPECT_DOUBLE_EQ(h.fraction_between(0.0, 2.0), 0.75);
  EXPECT_DOUBLE_EQ(h.fraction_between(2.0, 4.0), 0.25);
}

TEST(Histogram, TopEdgeGoesToLastBin) {
  Histogram h(0.0, 1.0, 2);
  h.add(1.0);  // exactly hi
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 0.0);
}

TEST(Histogram, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, AsciiRendersOneLinePerBin) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string art = h.ascii(10, "demo");
  EXPECT_NE(art.find("demo"), std::string::npos);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 3);  // label + 2 bins
}

// ----------------------------------------------------------------------- Table

TEST(Table, FormatsAlignedColumns) {
  Table t({"a", "speedup"});
  t.add_row({"x", Table::num(196.4, 4)});
  const std::string s = t.str();
  EXPECT_NE(s.find("speedup"), std::string::npos);
  EXPECT_NE(s.find("196.4"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, PercentFormatting) {
  EXPECT_EQ(Table::pct(0.9826), "98.26%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Table, WritesCsv) {
  Table t({"k", "ratio"});
  t.add_row({"7", "98.26"});
  t.add_row({"13", "40.92"});
  const std::string path = ::testing::TempDir() + "/hspec_table_test.csv";
  t.write_csv(path);
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "k,ratio");
  std::getline(f, line);
  EXPECT_EQ(line, "7,98.26");
  std::remove(path.c_str());
}

// ------------------------------------------------------------------------- Cli

TEST(Cli, ParsesAllForms) {
  // A bare `--flag` followed by a non-option consumes it as a value, so
  // boolean flags go last or use the `=` form.
  const char* argv[] = {"prog",       "--gpus",  "3", "--qlen=12",
                        "positional", "--verbose"};
  Cli cli(6, argv);
  EXPECT_EQ(cli.get_int("gpus", 0), 3);
  EXPECT_EQ(cli.get_int("qlen", 0), 12);
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_FALSE(cli.get_bool("absent"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, DefaultsAndTypes) {
  const char* argv[] = {"prog", "--x", "1.5"};
  Cli cli(3, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(cli.get_double("y", 2.5), 2.5);
  EXPECT_EQ(cli.get("z", "dflt"), "dflt");
  EXPECT_THROW(cli.get_int("x", 0), std::invalid_argument);
}

TEST(Cli, MalformedBooleansThrow) {
  const char* argv[] = {"prog", "--flag=maybe"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.get_bool("flag"), std::invalid_argument);
}

// ------------------------------------------------------------------------- RNG

TEST(Rng, DeterministicFromSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, BoundedStaysInRange) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5'000; ++i) {
    const auto v = rng.bounded(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Rng, SplitStreamsDecorrelated) {
  Xoshiro256 parent(5);
  Xoshiro256 s1 = parent.split(1);
  Xoshiro256 s2 = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (s1() == s2()) ++same;
  EXPECT_LT(same, 2);
}

// ------------------------------------------------------------------ FunctionRef

TEST(FunctionRef, CallsLambda) {
  int hits = 0;
  auto lambda = [&hits](double x) {
    ++hits;
    return x * 2.0;
  };
  FunctionRef<double(double)> f = lambda;
  EXPECT_DOUBLE_EQ(f(21.0), 42.0);
  EXPECT_EQ(hits, 1);
}

double free_fn(double x) { return x + 1.0; }

TEST(FunctionRef, CallsPlainFunction) {
  FunctionRef<double(double)> f = free_fn;
  EXPECT_DOUBLE_EQ(f(1.0), 2.0);
}

TEST(FunctionRef, CopyRefersToSameTarget) {
  int calls = 0;
  auto lambda = [&calls](double) {
    ++calls;
    return 0.0;
  };
  FunctionRef<double(double)> a = lambda;
  FunctionRef<double(double)> b = a;
  a(0.0);
  b(0.0);
  EXPECT_EQ(calls, 2);
}

TEST(BenchBanner, ContainsIdAndClaim) {
  const std::string b = bench_banner("Fig. 3", "speedup 196..311");
  EXPECT_NE(b.find("Fig. 3"), std::string::npos);
  EXPECT_NE(b.find("speedup"), std::string::npos);
}

}  // namespace
