// Tests for the paper's contribution: Algorithm 1 (scheduler policy, live
// scheduler, shared memory), task model, autotuner, and the hybrid driver's
// numerical equivalence to the serial baseline.

#include <gtest/gtest.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "apec/calculator.h"
#include "core/autotune.h"
#include "core/hybrid.h"
#include "core/scheduler.h"
#include "core/shm.h"
#include "core/task.h"
#include "util/fault.h"
#include "util/statistics.h"

namespace {

using namespace hspec;
using namespace hspec::core;

// ------------------------------------------------------------ pick_device

TEST(PickDevice, ChoosesMinimumLoad) {
  const std::int32_t loads[] = {3, 1, 2};
  const std::int64_t hist[] = {10, 10, 10};
  EXPECT_EQ(pick_device(loads, hist, 8), 1);
}

TEST(PickDevice, TieBreaksByMinimumHistory) {
  const std::int32_t loads[] = {2, 2, 2};
  const std::int64_t hist[] = {30, 10, 20};
  EXPECT_EQ(pick_device(loads, hist, 8), 1);
}

TEST(PickDevice, FirstWinsFullTie) {
  const std::int32_t loads[] = {1, 1};
  const std::int64_t hist[] = {5, 5};
  EXPECT_EQ(pick_device(loads, hist, 8), 0);
}

TEST(PickDevice, FullQueuesRejected) {
  const std::int32_t loads[] = {4, 4};
  const std::int64_t hist[] = {1, 2};
  EXPECT_EQ(pick_device(loads, hist, 4), -1);
  EXPECT_EQ(pick_device(loads, hist, 5), 0);
}

TEST(PickDevice, EmptyAndMismatchedInputs) {
  EXPECT_EQ(pick_device({}, {}, 4), -1);
  const std::int32_t loads[] = {0};
  const std::int64_t hist[] = {0, 0};
  EXPECT_EQ(pick_device(loads, hist, 4), -1);
}

// ------------------------------------------------------------------ shm

TEST(Shm, InProcessInitialization) {
  ShmRegion region = ShmRegion::create_inprocess(3, 10);
  SchedulerShm& shm = region.view();
  EXPECT_EQ(shm.device_count, 3);
  EXPECT_EQ(shm.max_queue_length, 10);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(shm.load[d].load(), 0);
    EXPECT_EQ(shm.history[d].load(), 0);
  }
}

TEST(Shm, PosixCreateAttachRoundTrip) {
  const std::string name = "/hspec_test_shm_" + std::to_string(::getpid());
  ShmRegion owner = ShmRegion::create_posix(name, 2, 6);
  owner.view().load[1].store(4);

  ShmRegion attached = ShmRegion::attach_posix(name);
  EXPECT_EQ(attached.view().device_count, 2);
  EXPECT_EQ(attached.view().max_queue_length, 6);
  EXPECT_EQ(attached.view().load[1].load(), 4);
  // Writes are visible both ways (same physical pages).
  attached.view().history[0].store(99);
  EXPECT_EQ(owner.view().history[0].load(), 99);
}

TEST(Shm, PosixDuplicateCreateFails) {
  const std::string name = "/hspec_test_shm_dup_" + std::to_string(::getpid());
  ShmRegion owner = ShmRegion::create_posix(name, 1, 2);
  EXPECT_THROW(ShmRegion::create_posix(name, 1, 2), std::runtime_error);
}

TEST(Shm, UnlinkedAfterOwnerDestroyed) {
  const std::string name = "/hspec_test_shm_gone_" + std::to_string(::getpid());
  { ShmRegion owner = ShmRegion::create_posix(name, 1, 2); }
  EXPECT_THROW(ShmRegion::attach_posix(name), std::runtime_error);
}

TEST(Shm, AttachToMissingSegmentFails) {
  const std::string name =
      "/hspec_test_shm_never_" + std::to_string(::getpid());
  EXPECT_THROW(ShmRegion::attach_posix(name), std::runtime_error);
}

TEST(Shm, AttachAfterExplicitUnlinkFails) {
  // Unlink removes the name immediately, but the owner's mapping stays valid
  // until it unmaps (POSIX shm follows file semantics). New ranks must get a
  // clean error instead of silently creating a fresh, empty segment.
  const std::string name =
      "/hspec_test_shm_unlinked_" + std::to_string(::getpid());
  ShmRegion owner = ShmRegion::create_posix(name, 2, 4);
  owner.view().load[0].store(7);
  ASSERT_EQ(::shm_unlink(name.c_str()), 0);
  EXPECT_THROW(ShmRegion::attach_posix(name), std::runtime_error);
  // The live mapping is unaffected by the unlink.
  EXPECT_EQ(owner.view().load[0].load(), 7);
  EXPECT_EQ(owner.view().device_count, 2);
}

// ------------------------------------------------------- PointWorkQueue

TEST(Shm, PointQueueStaticSeedMatchesOldSplit) {
  ShmRegion region = ShmRegion::create_inprocess(1, 4);
  PointWorkQueue& q = region.view().points;
  q.initialize(10, 3, 2);
  // Seed ranges are the old near-equal contiguous split: 4/3/3.
  EXPECT_EQ(q.range_begin[0], 0);
  EXPECT_EQ(q.range_end[0], 4);
  EXPECT_EQ(q.range_begin[1], 4);
  EXPECT_EQ(q.range_end[1], 7);
  EXPECT_EQ(q.range_begin[2], 7);
  EXPECT_EQ(q.range_end[2], 10);
  EXPECT_EQ(q.remaining(), 10);
}

TEST(Shm, PointQueueClaimsOwnRangeThenSteals) {
  ShmRegion region = ShmRegion::create_inprocess(1, 4);
  PointWorkQueue& q = region.view().points;
  q.initialize(6, 2, 2);
  // Rank 0 drains its own range [0, 3) in chunks of 2...
  auto c = q.claim(0);
  EXPECT_EQ(c.begin, 0);
  EXPECT_EQ(c.end, 2);
  EXPECT_FALSE(c.stolen);
  c = q.claim(0);
  EXPECT_EQ(c.begin, 2);
  EXPECT_EQ(c.end, 3);
  EXPECT_FALSE(c.stolen);
  // ...then steals rank 1's untouched range [3, 6).
  c = q.claim(0);
  EXPECT_EQ(c.begin, 3);
  EXPECT_TRUE(c.stolen);
  EXPECT_EQ(q.steals.load(), 1);
  EXPECT_EQ(q.stolen_points.load(), c.end - c.begin);
  // Invalid ranks claim nothing.
  EXPECT_TRUE(q.claim(-1).empty());
  EXPECT_TRUE(q.claim(2).empty());
}

TEST(Shm, PointQueueEveryPointClaimedExactlyOnceUnderContention) {
  constexpr std::int64_t kPoints = 4000;
  constexpr int kRanks = 8;
  ShmRegion region = ShmRegion::create_inprocess(1, 4);
  PointWorkQueue& q = region.view().points;
  q.initialize(kPoints, kRanks, 3);

  std::vector<std::atomic<int>> seen(kPoints);
  for (auto& s : seen) s.store(0);
  std::atomic<int> finished{0};
  std::vector<std::thread> workers;
  for (int r = 0; r < kRanks; ++r) {
    workers.emplace_back([&, r] {
      // Rank 0 never touches its own range until every other rank finished,
      // so thieves must drain it: steals are guaranteed, not just likely.
      if (r == 0) {
        while (finished.load() < kRanks - 1) std::this_thread::yield();
      }
      for (auto c = q.claim(r); !c.empty(); c = q.claim(r))
        for (std::int64_t p = c.begin; p < c.end; ++p)
          seen[static_cast<std::size_t>(p)].fetch_add(1);
      finished.fetch_add(1);
    });
  }
  for (auto& w : workers) w.join();

  for (std::int64_t p = 0; p < kPoints; ++p)
    ASSERT_EQ(seen[static_cast<std::size_t>(p)].load(), 1) << "point " << p;
  EXPECT_EQ(q.remaining(), 0);
  EXPECT_GT(q.steals.load(), 0);
  EXPECT_GT(q.stolen_points.load(), 0);
}

TEST(Shm, PointQueueHandlesFewerPointsThanRanks) {
  ShmRegion region = ShmRegion::create_inprocess(1, 4);
  PointWorkQueue& q = region.view().points;
  q.initialize(2, 5, 1);
  int claimed = 0;
  for (int r = 0; r < 5; ++r)
    for (auto c = q.claim(r); !c.empty(); c = q.claim(r))
      claimed += static_cast<int>(c.end - c.begin);
  EXPECT_EQ(claimed, 2);
  EXPECT_EQ(q.remaining(), 0);
}

TEST(Shm, ValidatesArguments) {
  EXPECT_THROW(ShmRegion::create_inprocess(-1, 4), std::invalid_argument);
  EXPECT_THROW(ShmRegion::create_inprocess(kMaxDevices + 1, 4),
               std::invalid_argument);
  EXPECT_THROW(ShmRegion::create_inprocess(2, 0), std::invalid_argument);
}

TEST(Shm, SchedulerInitializeValidatesBounds) {
  ShmRegion region = ShmRegion::create_inprocess(1, 4);
  SchedulerShm& shm = region.view();
  EXPECT_THROW(shm.initialize(-1, 4), std::invalid_argument);
  EXPECT_THROW(shm.initialize(kMaxDevices + 1, 4), std::invalid_argument);
  EXPECT_THROW(shm.initialize(2, 0), std::invalid_argument);
  // Boundary values are accepted.
  EXPECT_NO_THROW(shm.initialize(kMaxDevices, 1));
  EXPECT_EQ(shm.device_count, kMaxDevices);
}

TEST(Shm, PointQueueInitializeValidatesBounds) {
  ShmRegion region = ShmRegion::create_inprocess(1, 4);
  PointWorkQueue& q = region.view().points;
  EXPECT_THROW(q.initialize(10, -1, 2), std::invalid_argument);
  EXPECT_THROW(q.initialize(10, kMaxRanks + 1, 2), std::invalid_argument);
  EXPECT_THROW(q.initialize(-1, 2, 2), std::invalid_argument);
  EXPECT_THROW(q.initialize(10, 0, 2), std::invalid_argument);  // points, no ranks
  EXPECT_THROW(q.initialize(10, 2, 0), std::invalid_argument);
  // Boundary values are accepted: zero points with zero ranks (the
  // SchedulerShm::initialize default) and the maximum rank count.
  EXPECT_NO_THROW(q.initialize(0, 0, 1));
  EXPECT_NO_THROW(q.initialize(10, kMaxRanks, 1));
  EXPECT_EQ(q.remaining(), 10);
}

// ------------------------------------------------------------- TaskScheduler

TEST(Scheduler, AllocFreeLifecycle) {
  ShmRegion region = ShmRegion::create_inprocess(2, 2);
  TaskScheduler sched(region.view());
  EXPECT_EQ(sched.sche_alloc(), 0);
  EXPECT_EQ(sched.sche_alloc(), 1);  // min-history tie-break spreads load
  EXPECT_EQ(sched.sche_alloc(), 0);
  EXPECT_EQ(sched.sche_alloc(), 1);
  EXPECT_EQ(sched.sche_alloc(), -1);  // both full
  EXPECT_EQ(sched.load(0), 2);
  EXPECT_EQ(sched.history(0), 2);
  sched.sche_free(0);
  EXPECT_EQ(sched.load(0), 1);
  EXPECT_EQ(sched.sche_alloc(), 0);
  EXPECT_EQ(sched.stats().gpu_allocations, 5);
  EXPECT_EQ(sched.stats().cpu_fallbacks, 1);
  EXPECT_NEAR(sched.stats().gpu_task_ratio(), 5.0 / 6.0, 1e-12);
}

TEST(Scheduler, HistoryPersistsAcrossFrees) {
  ShmRegion region = ShmRegion::create_inprocess(1, 4);
  TaskScheduler sched(region.view());
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(sched.sche_alloc(), 0);
    sched.sche_free(0);
  }
  EXPECT_EQ(sched.history(0), 3);
  EXPECT_EQ(sched.load(0), 0);
}

TEST(Scheduler, NoDevicesAlwaysCpu) {
  ShmRegion region = ShmRegion::create_inprocess(0, 4);
  TaskScheduler sched(region.view());
  EXPECT_EQ(sched.sche_alloc(), -1);
  EXPECT_EQ(sched.stats().cpu_fallbacks, 1);
}

TEST(Scheduler, FreeWithoutAllocThrows) {
  ShmRegion region = ShmRegion::create_inprocess(1, 4);
  TaskScheduler sched(region.view());
  EXPECT_THROW(sched.sche_free(0), std::logic_error);
  EXPECT_THROW(sched.sche_free(5), std::out_of_range);
  EXPECT_THROW(sched.load(9), std::out_of_range);
  EXPECT_THROW(sched.history(-1), std::out_of_range);
}

TEST(Scheduler, MaxQueueLengthAdjustable) {
  ShmRegion region = ShmRegion::create_inprocess(1, 1);
  TaskScheduler sched(region.view());
  EXPECT_EQ(sched.sche_alloc(), 0);
  EXPECT_EQ(sched.sche_alloc(), -1);
  sched.set_max_queue_length(2);
  EXPECT_EQ(sched.sche_alloc(), 0);
  EXPECT_THROW(sched.set_max_queue_length(0), std::invalid_argument);
}

TEST(Scheduler, ConcurrentAllocNeverExceedsBound) {
  // Property: under heavy contention the per-device load never exceeds the
  // maximum queue length, and every successful alloc is eventually freed.
  constexpr int kDevices = 3;
  constexpr int kMaxLen = 5;
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 2'000;

  ShmRegion region = ShmRegion::create_inprocess(kDevices, kMaxLen);
  std::atomic<bool> violation{false};
  std::atomic<std::int64_t> gpu_total{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      TaskScheduler sched(region.view());
      for (int i = 0; i < kItersPerThread; ++i) {
        const int dev = sched.sche_alloc();
        if (dev >= 0) {
          for (int d = 0; d < kDevices; ++d) {
            const auto l = region.view().load[d].load();
            if (l < 0 || l > kMaxLen) violation = true;
          }
          ++gpu_total;
          sched.sche_free(dev);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_FALSE(violation.load());
  for (int d = 0; d < kDevices; ++d)
    EXPECT_EQ(region.view().load[d].load(), 0);
  std::int64_t history_total = 0;
  for (int d = 0; d < kDevices; ++d)
    history_total += region.view().history[d].load();
  EXPECT_EQ(history_total, gpu_total.load());
}

// -------------------------------------------------- TaskScheduler health

TEST(SchedulerHealth, DegradesThenQuarantinesOnConsecutiveFaults) {
  ShmRegion region = ShmRegion::create_inprocess(2, 4);
  TaskScheduler sched(region.view());
  EXPECT_EQ(sched.health(0), DeviceHealth::healthy);
  // Defaults from SchedulerShm::initialize: degrade after 2, quarantine
  // after 5 consecutive faults.
  EXPECT_EQ(sched.report_task_fault(0), DeviceHealth::healthy);
  EXPECT_EQ(sched.report_task_fault(0), DeviceHealth::degraded);
  EXPECT_EQ(sched.stats().degradations, 1);
  // A success resets the streak and completes the recovery.
  sched.report_task_success(0);
  EXPECT_EQ(sched.health(0), DeviceHealth::healthy);
  EXPECT_EQ(sched.stats().recoveries, 1);
  // Five consecutive faults pass through degraded into quarantine.
  for (int i = 0; i < 5; ++i) sched.report_task_fault(0);
  EXPECT_EQ(sched.health(0), DeviceHealth::quarantined);
  EXPECT_EQ(sched.stats().degradations, 2);
  EXPECT_EQ(sched.stats().quarantines, 1);
  // A stale success must not resurrect a quarantined device.
  sched.report_task_success(0);
  EXPECT_EQ(sched.health(0), DeviceHealth::quarantined);
  // The other device never saw a fault.
  EXPECT_EQ(sched.health(1), DeviceHealth::healthy);
  EXPECT_THROW(sched.health(2), std::out_of_range);
  EXPECT_THROW(sched.health(-1), std::out_of_range);
}

TEST(SchedulerHealth, FatalFaultQuarantinesImmediately) {
  ShmRegion region = ShmRegion::create_inprocess(2, 2);
  TaskScheduler sched(region.view());
  EXPECT_EQ(sched.report_task_fault(0, /*fatal=*/true),
            DeviceHealth::quarantined);
  EXPECT_EQ(sched.stats().quarantines, 1);
  EXPECT_EQ(sched.stats().degradations, 0);
  // sche_alloc treats the quarantined device like a full queue: the
  // survivor takes everything, then the CPU.
  EXPECT_EQ(sched.sche_alloc(), 1);
  EXPECT_EQ(sched.sche_alloc(), 1);
  EXPECT_EQ(sched.sche_alloc(), -1);
  EXPECT_FALSE(sched.all_quarantined());
}

TEST(SchedulerHealth, AllQuarantinedDrainsToCpu) {
  ShmRegion region = ShmRegion::create_inprocess(2, 4);
  TaskScheduler sched(region.view());
  sched.report_task_fault(0, true);
  sched.report_task_fault(1, true);
  EXPECT_TRUE(sched.all_quarantined());
  EXPECT_EQ(sched.sche_alloc(), -1);
  EXPECT_EQ(sched.stats().cpu_fallbacks, 1);
  // Zero devices is not "all quarantined" — that verdict routes tasks to
  // the degraded kernel path, which is wrong for a deliberately CPU-only
  // run.
  ShmRegion none = ShmRegion::create_inprocess(0, 4);
  TaskScheduler cpu_only(none.view());
  EXPECT_FALSE(cpu_only.all_quarantined());
}

TEST(SchedulerHealth, ReadmissionPutsDeviceOnProbation) {
  ShmRegion region = ShmRegion::create_inprocess(1, 4);
  TaskScheduler sched(region.view());
  EXPECT_FALSE(sched.readmit(0));  // healthy: nothing to readmit
  sched.report_task_fault(0, true);
  EXPECT_EQ(sched.sche_alloc(), -1);
  EXPECT_TRUE(sched.readmit(0));
  EXPECT_EQ(sched.health(0), DeviceHealth::degraded);
  EXPECT_EQ(sched.stats().readmissions, 1);
  EXPECT_EQ(sched.sche_alloc(), 0);  // degraded devices are allocatable
  sched.sche_free(0);
  // A clean task during probation completes the recovery.
  sched.report_task_success(0);
  EXPECT_EQ(sched.health(0), DeviceHealth::healthy);
  EXPECT_EQ(sched.stats().recoveries, 1);
  EXPECT_FALSE(sched.readmit(0));
}

TEST(SchedulerHealth, QueueFullRacingDeviceDeath) {
  // The device dies while its queue is full: draining the queue must not
  // make it allocatable again, and readmission must.
  ShmRegion region = ShmRegion::create_inprocess(1, 2);
  TaskScheduler sched(region.view());
  ASSERT_EQ(sched.sche_alloc(), 0);
  ASSERT_EQ(sched.sche_alloc(), 0);
  ASSERT_EQ(sched.sche_alloc(), -1);  // full
  sched.report_task_fault(0, true);   // death races the full queue
  sched.sche_free(0);
  sched.sche_free(0);
  EXPECT_EQ(sched.load(0), 0);
  EXPECT_EQ(sched.sche_alloc(), -1);  // empty but quarantined
  EXPECT_TRUE(sched.readmit(0));
  EXPECT_EQ(sched.sche_alloc(), 0);
}

TEST(SchedulerHealth, HealthNamesRoundTrip) {
  EXPECT_STREQ(to_string(DeviceHealth::healthy), "healthy");
  EXPECT_STREQ(to_string(DeviceHealth::degraded), "degraded");
  EXPECT_STREQ(to_string(DeviceHealth::quarantined), "quarantined");
}

// ------------------------------------------------------------------ autotune

TEST(Autotune, FindsTheKneeOfAConvexCurve) {
  // Synthetic Fig. 4 curve: improves to q=10 then degrades.
  auto measure = [](int q) {
    return 100.0 + 200.0 / q + (q > 10 ? 3.0 * (q - 10) : 0.0);
  };
  const auto r = autotune_max_queue_length(measure);
  EXPECT_EQ(r.best_max_queue_length, 10);
  EXPECT_GE(r.probes.size(), 5u);
}

TEST(Autotune, MonotoneCurvePicksLargestProbed) {
  auto measure = [](int q) { return 1000.0 / q; };
  AutotuneOptions opt;
  opt.max_queue_length = 16;
  const auto r = autotune_max_queue_length(measure, opt);
  EXPECT_EQ(r.best_max_queue_length, 16);
}

TEST(Autotune, StopsEarlyAfterInflexion) {
  int calls = 0;
  auto measure = [&](int q) {
    ++calls;
    return q <= 6 ? 100.0 - q : 200.0 + 10.0 * q;  // sharp inflexion at 6
  };
  AutotuneOptions opt;
  opt.max_queue_length = 32;
  const auto r = autotune_max_queue_length(measure, opt);
  EXPECT_EQ(r.best_max_queue_length, 6);
  EXPECT_LT(calls, 16);  // did not probe the whole range
}

TEST(Autotune, ValidatesOptions) {
  auto measure = [](int) { return 1.0; };
  AutotuneOptions bad;
  bad.step = 0;
  EXPECT_THROW(autotune_max_queue_length(measure, bad), std::invalid_argument);
}

// ----------------------------------------------------------------- task model

TEST(TaskModel, GranularityNames) {
  EXPECT_EQ(to_string(TaskGranularity::ion), "Ion");
  EXPECT_EQ(to_string(TaskGranularity::level), "Level");
}

TEST(TaskModel, WorkloadArithmetic) {
  WorkloadParams w;
  w.ions_per_point = 496;
  w.avg_levels_per_ion = 4;
  w.bins_per_level = 50'000;
  EXPECT_EQ(w.integrals_per_ion_task(), 200'000u);
  EXPECT_EQ(w.integrals_per_point(), 99'200'000u);  // ~1e8, paper: "up to 2e8"
}

// -------------------------------------------------------------- hybrid driver

class HybridTest : public ::testing::Test {
 protected:
  HybridTest()
      : db_(small_db()), grid_(apec::EnergyGrid::wavelength(5.0, 40.0, 48)),
        calc_(db_, grid_, kernel_options()) {}

  static atomic::DatabaseConfig small_db() {
    atomic::DatabaseConfig cfg;
    cfg.max_z = 8;
    cfg.levels = {2, true};
    return cfg;
  }
  static apec::CalcOptions kernel_options() {
    apec::CalcOptions opt;
    opt.integration.adaptive = false;  // same math on both paths
    return opt;
  }

  double worst_relative_difference(const apec::Spectrum& a,
                                   const apec::Spectrum& b) const {
    return util::max_relative_error(a.values(), b.values(),
                                    1e-30 * std::max(a.peak(), 1e-300));
  }

  atomic::AtomicDatabase db_;
  apec::EnergyGrid grid_;
  apec::SpectrumCalculator calc_;
};

TEST_F(HybridTest, MakeTasksCountsMatchGranularity) {
  const apec::GridPoint pt{0.5, 1.0, 0.0, 0};
  const auto pops = apec::solve_populations(db_, pt);
  const auto ion_tasks = make_tasks(calc_, pt, pops, TaskGranularity::ion);
  const auto level_tasks = make_tasks(calc_, pt, pops, TaskGranularity::level);
  EXPECT_GT(ion_tasks.size(), 0u);
  // Level granularity multiplies RRC ions by their level count; free-free
  // stays a single task.
  std::size_t expected = 0;
  for (const auto& t : ion_tasks)
    expected += t.ion.emits_rrc() ? db_.level_count_for(t.ion) : 1;
  EXPECT_EQ(level_tasks.size(), expected);
}

struct HybridCase {
  int ranks;
  int devices;
  TaskGranularity granularity;
};

class HybridEquivalence : public HybridTest,
                          public ::testing::WithParamInterface<HybridCase> {};

TEST_P(HybridEquivalence, MatchesSerialBaseline) {
  const auto [ranks, devices, granularity] = GetParam();
  const std::vector<apec::GridPoint> points{{0.3, 1.0, 0.0, 0},
                                            {0.8, 1.0, 0.0, 1}};
  // The baseline must use the same integration path the hybrid run takes:
  // with devices the tasks run the Simpson kernels; without devices every
  // task falls back to QAGS (the serial APEC path).
  apec::CalcOptions baseline_opt = kernel_options();
  baseline_opt.integration.adaptive = (devices == 0);
  apec::SpectrumCalculator baseline(db_, grid_, baseline_opt);
  std::vector<apec::Spectrum> serial;
  for (const auto& pt : points) serial.push_back(baseline.calculate(pt));

  HybridConfig cfg;
  cfg.ranks = ranks;
  cfg.devices = devices;
  cfg.granularity = granularity;
  cfg.max_queue_length = 4;
  HybridDriver driver(calc_, cfg);
  const HybridResult res = driver.run(points);

  ASSERT_EQ(res.spectra.size(), 2u);
  for (std::size_t p = 0; p < points.size(); ++p)
    EXPECT_LT(worst_relative_difference(serial[p], res.spectra[p]), 1e-10)
        << "point " << p;
  EXPECT_GT(res.tasks_total, 0u);
  EXPECT_EQ(res.scheduling.gpu_allocations + res.scheduling.cpu_fallbacks,
            static_cast<std::int64_t>(res.tasks_total));
  if (devices == 0) {
    EXPECT_EQ(res.scheduling.gpu_allocations, 0);
  } else {
    EXPECT_GT(res.scheduling.gpu_allocations, 0);
    std::int64_t history_total = 0;
    for (auto h : res.history) history_total += h;
    EXPECT_EQ(history_total, res.scheduling.gpu_allocations);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, HybridEquivalence,
    ::testing::Values(HybridCase{1, 1, TaskGranularity::ion},
                      HybridCase{4, 2, TaskGranularity::ion},
                      HybridCase{4, 0, TaskGranularity::ion},
                      HybridCase{2, 1, TaskGranularity::level},
                      HybridCase{4, 3, TaskGranularity::level},
                      HybridCase{8, 2, TaskGranularity::ion}));

TEST_F(HybridTest, DeviceStatsShowCoarseGranularityTransfers) {
  const std::vector<apec::GridPoint> points{{0.5, 1.0, 0.0, 0}};
  HybridConfig cfg;
  cfg.ranks = 2;
  cfg.devices = 1;
  cfg.mode = ExecutionMode::synchronous;
  HybridDriver driver(calc_, cfg);
  const HybridResult res = driver.run(points);
  ASSERT_EQ(res.device_stats.size(), 1u);
  const auto& st = res.device_stats[0];
  // Synchronous mode, ion granularity: one H2D (edges) and one D2H (emi)
  // per GPU task, and at least one kernel per level of each task.
  EXPECT_EQ(st.h2d_copies, st.d2h_copies);
  EXPECT_GE(st.kernels_launched, st.d2h_copies);
  EXPECT_GT(st.kernel_time_s, 0.0);
}

TEST_F(HybridTest, ResidentCacheEliminatesPerTaskUploads) {
  const std::vector<apec::GridPoint> points{{0.5, 1.0, 0.0, 0}};
  HybridConfig cfg;
  cfg.ranks = 2;
  cfg.devices = 1;
  cfg.mode = ExecutionMode::pipelined;
  HybridDriver driver(calc_, cfg);
  const HybridResult res = driver.run(points);
  ASSERT_EQ(res.device_stats.size(), 1u);
  const auto& st = res.device_stats[0];
  // The bin edges go up exactly once per device; every task still reads
  // its emissivity back, so D2H dwarfs H2D.
  EXPECT_EQ(st.h2d_copies, 1u);
  EXPECT_GT(st.d2h_copies, 1u);
  EXPECT_GT(st.cache_hits, 0u);
  EXPECT_GT(st.bytes_h2d_saved, 0u);
  EXPECT_GT(st.streams_used, 0u);
  EXPECT_GE(st.kernels_launched, st.d2h_copies);
  EXPECT_GT(res.virtual_makespan_s, 0.0);
}

TEST_F(HybridTest, InvalidConfigThrows) {
  HybridConfig bad;
  bad.ranks = 0;
  EXPECT_THROW(HybridDriver(calc_, bad), std::invalid_argument);
  HybridConfig bad2;
  bad2.max_queue_length = 0;
  EXPECT_THROW(HybridDriver(calc_, bad2), std::invalid_argument);
  HybridConfig bad3;
  bad3.max_task_attempts = 0;
  EXPECT_THROW(HybridDriver(calc_, bad3), std::invalid_argument);
  HybridConfig bad4;
  bad4.degrade_after = 3;
  bad4.quarantine_after = 2;  // must be >= degrade_after
  EXPECT_THROW(HybridDriver(calc_, bad4), std::invalid_argument);
}

// ------------------------------------------------- hybrid fault recovery

TEST_F(HybridTest, RetryBudgetExhaustionDegradesBitIdentically) {
  // Every kernel launch fails: each RRC task burns its whole attempt budget
  // and degrades to the kernel-equivalent host path. The spectrum must stay
  // bitwise what the healthy device would have produced.
  const std::vector<apec::GridPoint> points{{0.3, 1.0, 0.0, 0},
                                            {0.8, 1.0, 0.0, 1}};
  HybridConfig base;
  base.ranks = 1;
  base.devices = 1;
  base.mode = ExecutionMode::synchronous;
  base.max_queue_length = 32;
  const HybridResult ref = HybridDriver(calc_, base).run(points);

  util::FaultPlanConfig fc;
  fc.seed = 5;
  fc.kernel_fault_rate = 1.0;
  util::FaultPlan plan(fc);
  HybridConfig cfg = base;
  cfg.fault_plan = &plan;
  cfg.max_task_attempts = 2;
  const HybridResult res = HybridDriver(calc_, cfg).run(points);

  ASSERT_EQ(ref.spectra.size(), res.spectra.size());
  for (std::size_t p = 0; p < ref.spectra.size(); ++p)
    for (std::size_t b = 0; b < ref.spectra[p].bin_count(); ++b)
      ASSERT_EQ(ref.spectra[p][b], res.spectra[p][b])
          << "point " << p << " bin " << b;
  EXPECT_GT(res.faults.injected, 0);
  EXPECT_EQ(res.faults.injected, res.faults.retried);
  EXPECT_GT(res.faults.cpu_fallbacks, 0);
  EXPECT_GE(res.faults.quarantines, 1);
  EXPECT_EQ(res.faults.gpu_completed + res.faults.cpu_completed,
            static_cast<std::int64_t>(res.tasks_total));
  ASSERT_EQ(res.device_health.size(), 1u);
  EXPECT_EQ(res.device_health[0], DeviceHealth::quarantined);
}

TEST_F(HybridTest, DeviceDeathRacingFullQueueKeepsExactlyOnceAccounting) {
  // A one-slot queue under two ranks forces queue-full CPU fallbacks (the
  // paper's QAGS path) to race the device's mid-run death. Bit-identity is
  // not defined here — QAGS differs from the kernels at ~1e-5 — but every
  // task must still complete exactly once and the dead device must end
  // quarantined.
  const std::vector<apec::GridPoint> points{{0.3, 1.0, 0.0, 0},
                                            {0.5, 1.0, 0.0, 1},
                                            {0.7, 1.0, 0.0, 2},
                                            {0.9, 1.0, 0.0, 3}};
  util::FaultPlanConfig fc;
  fc.seed = 3;
  fc.dead_device = 0;
  fc.dies_after_ops = 6;
  util::FaultPlan plan(fc);

  HybridConfig cfg;
  cfg.ranks = 2;
  cfg.devices = 1;
  cfg.max_queue_length = 1;
  cfg.mode = ExecutionMode::pipelined;
  cfg.fault_plan = &plan;
  const std::int64_t total = static_cast<std::int64_t>(points.size());
  // Hold rank 1 until rank 0 has claimed work, so both ranks are live and
  // contending on the one-slot queue when the device dies.
  cfg.rank_start_hook = [&](int rank, const PointWorkQueue& queue) {
    if (rank == 0) return;
    while (queue.remaining() == total) std::this_thread::yield();
  };
  const HybridResult res = HybridDriver(calc_, cfg).run(points);

  EXPECT_EQ(res.faults.device_deaths, 1);
  ASSERT_EQ(res.device_health.size(), 1u);
  EXPECT_EQ(res.device_health[0], DeviceHealth::quarantined);
  EXPECT_EQ(res.faults.injected, res.faults.retried);
  EXPECT_EQ(res.faults.gpu_completed + res.faults.cpu_completed,
            static_cast<std::int64_t>(res.tasks_total));

  // Numerically the spectra still match the serial kernel baseline to the
  // QAGS-vs-Simpson tolerance.
  for (std::size_t p = 0; p < points.size(); ++p) {
    const apec::Spectrum serial = calc_.calculate(points[p]);
    EXPECT_LT(worst_relative_difference(serial, res.spectra[p]), 1e-4)
        << "point " << p;
  }
}

}  // namespace
