// Tests for the NEI substrate: Eq. (4) systems, conservation, equilibrium
// fixed points, relaxation to CIE, and CPU/GPU execution equivalence.

#include <gtest/gtest.h>

#include <cmath>

#include "atomic/ion_balance.h"
#include "nei/evolve.h"
#include "nei/system.h"
#include "vgpu/device.h"

namespace {

using namespace hspec;
using namespace hspec::nei;
using namespace hspec::util::unit_literals;
using hspec::util::KeV;
using hspec::util::PerCm3;

PlasmaHistory constant_history(double ne, double kT) {
  PlasmaHistory h;
  h.ne_cm3 = PerCm3{ne};
  h.kT_keV = [kT](double) { return kT; };
  return h;
}

TEST(NeiSystem, DimensionIsZPlusOne) {
  NeiSystem sys(8, constant_history(1.0, 1.0));
  EXPECT_EQ(sys.dimension(), 9u);
  EXPECT_EQ(sys.z(), 8);
  EXPECT_THROW(NeiSystem(0, constant_history(1.0, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(NeiSystem(31, constant_history(1.0, 1.0)),
               std::invalid_argument);
}

TEST(NeiSystem, RhsConservesTotalDensity) {
  // Sum of dn_i/dt is identically zero (chain structure of Eq. 4).
  NeiSystem sys(8, constant_history(2.0, 0.5));
  std::vector<double> y{0.1, 0.2, 0.1, 0.1, 0.2, 0.1, 0.1, 0.05, 0.05};
  std::vector<double> dydt(9);
  sys.rhs(0.0, y, dydt);
  double sum = 0.0;
  for (double d : dydt) sum += d;
  EXPECT_NEAR(sum, 0.0, 1e-18);
}

TEST(NeiSystem, RhsScalesWithElectronDensity) {
  NeiSystem lo(8, constant_history(1.0, 0.5));
  NeiSystem hi(8, constant_history(10.0, 0.5));
  std::vector<double> y(9, 1.0 / 9.0);
  std::vector<double> d_lo(9), d_hi(9);
  lo.rhs(0.0, y, d_lo);
  hi.rhs(0.0, y, d_hi);
  for (std::size_t i = 0; i < 9; ++i)
    EXPECT_NEAR(d_hi[i], 10.0 * d_lo[i], 1e-12 * std::fabs(d_hi[i]) + 1e-30);
}

TEST(NeiSystem, JacobianIsTridiagonalAndMatchesNumerics) {
  NeiSystem sys(6, constant_history(3.0, 0.7));
  std::vector<double> y(7, 1.0 / 7.0);
  ode::Matrix ana(7, 7);
  ode::Matrix num(7, 7);
  sys.jacobian(0.0, y, ana);
  ode::numerical_jacobian(sys, 0.0, y, num);
  for (std::size_t r = 0; r < 7; ++r)
    for (std::size_t c = 0; c < 7; ++c) {
      if (c + 1 < r || c > r + 1) {
        EXPECT_DOUBLE_EQ(ana(r, c), 0.0) << r << "," << c;
      }
      // Rates are y-independent: the numeric Jacobian must agree well.
      EXPECT_NEAR(num(r, c), ana(r, c),
                  1e-4 * std::max(1.0, std::fabs(ana(r, c))));
    }
}

TEST(NeiSystem, CieIsAFixedPoint) {
  // At the equilibrium fractions the net flux through every link vanishes.
  const double kT = 0.8;
  NeiSystem sys(8, constant_history(5.0, kT));
  const auto y = equilibrium_state(8, KeV{kT});
  std::vector<double> dydt(9);
  sys.rhs(0.0, y, dydt);
  for (std::size_t i = 0; i < dydt.size(); ++i)
    EXPECT_NEAR(dydt[i], 0.0, 1e-12) << "state " << i;
}

TEST(Renormalize, ClipsAndNormalizes) {
  std::vector<double> y{0.5, -0.1, 0.7};
  renormalize(y);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_NEAR(y[0] + y[1] + y[2], 1.0, 1e-15);
  std::vector<double> zeros{0.0, -1.0};
  EXPECT_THROW(renormalize(zeros), std::runtime_error);
}

// --------------------------------------------------------------------- evolve

TEST(Evolve, EquilibriumStateStaysPut) {
  const double kT = 1.2;
  auto st = PointState::equilibrium({8}, KeV{kT});
  const auto before = st.ions[0];
  evolve_point_cpu(st, constant_history(4.0, kT), 0.0, 1e8, 20);
  for (std::size_t j = 0; j < before.size(); ++j)
    EXPECT_NEAR(st.ions[0][j], before[j], 1e-6);
}

TEST(Evolve, ShockHeatingRelaxesToNewCie) {
  // Equilibrated cold, then held at 2 keV long enough to re-equilibrate.
  auto st = PointState::equilibrium({8, 26}, 0.1_keV);
  const auto rep =
      evolve_point_cpu(st, constant_history(1.0, 2.0), 0.0, 1e9, 100);
  EXPECT_EQ(rep.tasks, 10u);  // 100 steps / 10 per task
  const auto cie_o = atomic::cie_fractions(8, 2.0_keV);
  for (std::size_t j = 0; j < cie_o.size(); ++j)
    EXPECT_NEAR(st.ions[0][j], cie_o[j], 1e-5) << "O state " << j;
  EXPECT_LT(st.conservation_error(), 1e-12);
}

TEST(Evolve, UnderIonizedOnTheWayUp) {
  // Mid-relaxation the plasma must lag the hot equilibrium: mean charge
  // below CIE(2 keV) but above CIE(0.1 keV) — the NEI phenomenon itself.
  auto st = PointState::equilibrium({8}, 0.1_keV);
  evolve_point_cpu(st, constant_history(1.0, 2.0), 0.0, 1e6, 10);
  auto mean_charge = [](const std::vector<double>& f) {
    double m = 0.0;
    for (std::size_t j = 0; j < f.size(); ++j) m += static_cast<double>(j) * f[j];
    return m;
  };
  const double now = mean_charge(st.ions[0]);
  const double cold = mean_charge(atomic::cie_fractions(8, 0.1_keV));
  const double hot = mean_charge(atomic::cie_fractions(8, 2.0_keV));
  EXPECT_GT(now, cold + 1e-3);
  EXPECT_LT(now, hot - 1e-3);
}

TEST(Evolve, ConservationHoldsAcrossLongRuns) {
  auto st = PointState::equilibrium(default_element_set(), 0.3_keV);
  EXPECT_EQ(st.elements.size(), 12u);  // "about a dozen of ODE groups"
  evolve_point_cpu(st, constant_history(2.0, 1.0), 0.0, 1e7, 30);
  EXPECT_LT(st.conservation_error(), 1e-12);
}

TEST(Evolve, GpuPathBitwiseMatchesCpuPath) {
  auto cpu_state = PointState::equilibrium({8, 26}, 0.1_keV);
  auto gpu_state = cpu_state;
  const auto hist = constant_history(1.0, 2.0);
  const auto cpu_rep = evolve_point_cpu(cpu_state, hist, 0.0, 1e8, 40);
  vgpu::Device dev(vgpu::tesla_c2075(), 0);
  const auto gpu_rep = evolve_point_gpu(gpu_state, hist, 0.0, 1e8, 40, dev);
  EXPECT_EQ(cpu_rep.tasks, gpu_rep.tasks);
  EXPECT_EQ(cpu_rep.solver_steps, gpu_rep.solver_steps);
  for (std::size_t e = 0; e < cpu_state.ions.size(); ++e)
    for (std::size_t j = 0; j < cpu_state.ions[e].size(); ++j)
      EXPECT_DOUBLE_EQ(cpu_state.ions[e][j], gpu_state.ions[e][j]);
  // Task packing: one H2D + one D2H per packed task.
  const auto st = dev.stats();
  EXPECT_EQ(st.h2d_copies, gpu_rep.tasks);
  EXPECT_EQ(st.d2h_copies, gpu_rep.tasks);
  EXPECT_EQ(st.kernels_launched, gpu_rep.tasks);
}

TEST(Evolve, TimeVaryingTemperatureHistory) {
  // Linear ramp: must run without error and land between the endpoints.
  PlasmaHistory ramp;
  ramp.ne_cm3 = 1.0_per_cm3;
  ramp.kT_keV = [](double t) { return 0.1 + 1.9 * std::min(t / 1e10, 1.0); };
  auto st = PointState::equilibrium({8}, 0.1_keV);
  evolve_point_cpu(st, ramp, 0.0, 1e8, 50);
  EXPECT_LT(st.conservation_error(), 1e-12);
}

TEST(Evolve, StiffRegimeEngagesImplicitSolver) {
  // Dense plasma, coarse steps: the fastest rate times ne times dt is ~1e5,
  // far beyond an explicit solver's stability budget per step — the LSODA
  // path must switch to BDF.
  auto st = PointState::equilibrium({26}, 0.05_keV);
  EvolveOptions opt;
  const auto rep =
      evolve_point_cpu(st, constant_history(1e8, 5.0), 0.0, 1e5, 10, opt);
  EXPECT_GT(rep.method_switches + rep.stiff_solves, 0u);
  EXPECT_LT(st.conservation_error(), 1e-12);
}

TEST(Evolve, ValidatesOptions) {
  auto st = PointState::equilibrium({8}, 0.1_keV);
  EvolveOptions opt;
  opt.steps_per_task = 0;
  EXPECT_THROW(
      evolve_point_cpu(st, constant_history(1.0, 1.0), 0.0, 1.0, 10, opt),
      std::invalid_argument);
}

}  // namespace
