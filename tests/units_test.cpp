// Tests for the strong-typed unit layer (util/units.h): dimension algebra,
// conversions, the zero-overhead guarantee, and the fp-comparison policy
// helpers. The *negative* half of the contract — `KeV + Seconds` must not
// compile — is proved by the units_add_mismatch_rejected ctest, which
// feeds tests/compile_fail/units_add_mismatch.cpp to the compiler and
// requires failure.

#include <gtest/gtest.h>

#include <limits>
#include <type_traits>

#include "util/fp_compare.h"
#include "util/units.h"

namespace {

using namespace hspec::util;
using namespace hspec::util::unit_literals;

// ------------------------------------------------------- dimension algebra

TEST(Units, SameDimensionArithmetic) {
  const KeV a = 1.5_keV;
  const KeV b = 0.5_keV;
  EXPECT_DOUBLE_EQ((a + b).value(), 2.0);
  EXPECT_DOUBLE_EQ((a - b).value(), 1.0);
  EXPECT_DOUBLE_EQ((-a).value(), -1.5);
  KeV c = a;
  c += b;
  c -= 0.25_keV;
  EXPECT_DOUBLE_EQ(c.value(), 1.75);
}

TEST(Units, ScalarScaling) {
  const PerCm3 n = 2.0_per_cm3;
  EXPECT_DOUBLE_EQ((3.0 * n).value(), 6.0);
  EXPECT_DOUBLE_EQ((n * 3.0).value(), 6.0);
  EXPECT_DOUBLE_EQ((n / 2.0).value(), 1.0);
  PerCm3 m = n;
  m *= 5.0;
  m /= 2.0;
  EXPECT_DOUBLE_EQ(m.value(), 5.0);
}

TEST(Units, ProductsComposeDimensions) {
  // density * rate coefficient = rate (the coronal-population identity).
  const PerCm3 ne{4.0};
  const Cm3PerS c{0.5};
  const PerSecond rate = ne * c;
  EXPECT_DOUBLE_EQ(rate.value(), 2.0);
  static_assert(std::is_same_v<decltype(ne * c), PerSecond>);
  // dP/dE * dE = bin emissivity (Eq. 1 -> Eq. 2).
  const SpectralEmissivity dpde{3.0};
  const EmissivityPhotCm3PerS bin = dpde * KeV{0.5};
  EXPECT_DOUBLE_EQ(bin.value(), 1.5);
}

TEST(Units, DimensionlessRatiosCollapseToDouble) {
  // Same-dimension division is a plain double: no wrapper survives.
  const auto ratio = 3.0_keV / 1.5_keV;
  static_assert(std::is_same_v<decltype(ratio), const double>);
  EXPECT_DOUBLE_EQ(ratio, 2.0);
  // Inverse dimensions multiply out too.
  const auto x = PerCm3{2.0} * Cm3{0.25};
  static_assert(std::is_same_v<decltype(x), const double>);
  EXPECT_DOUBLE_EQ(x, 0.5);
}

TEST(Units, DoubleOverQuantityInvertsDimension) {
  const auto inv = 1.0 / Seconds{4.0};
  static_assert(std::is_same_v<decltype(inv), const PerSecond>);
  EXPECT_DOUBLE_EQ(inv.value(), 0.25);
}

TEST(Units, ComparisonsWorkWithinADimension) {
  EXPECT_LT(1.0_keV, 2.0_keV);
  EXPECT_GT(2.0_per_cm3, 1.0_per_cm3);
  EXPECT_EQ(1.0_s, 1.0_s);
  EXPECT_NE(1.0_s, 2.0_s);
}

TEST(Units, LiteralsIncludingIntegerAndNegatedForms) {
  EXPECT_DOUBLE_EQ((2_keV).value(), 2.0);
  EXPECT_DOUBLE_EQ((-1.0_keV).value(), -1.0);  // literal then unary minus
  EXPECT_DOUBLE_EQ((1e10_s).value(), 1e10);
  EXPECT_DOUBLE_EQ((300_K).value(), 300.0);
  EXPECT_DOUBLE_EQ((1.0_cm2).value(), 1.0);
}

// ------------------------------------------------------------- conversions

TEST(Units, KevKelvinRoundTrip) {
  // 1 keV ~ 1.16e7 K; round trips survive to ~1 ulp.
  const KeV e = 1.0_keV;
  const Kelvin t = kev_to_kelvin(e);
  EXPECT_NEAR(t.value(), 1.1604518e7, 1e1);
  const KeV back = kelvin_to_kev(t);
  EXPECT_NEAR(back.value(), e.value(), 4.0 * 2.220446049250313e-16);
  // And the other direction.
  const Kelvin room{300.0};
  EXPECT_NEAR(kev_to_kelvin(kelvin_to_kev(room)).value(), 300.0,
              300.0 * 4.0 * 2.220446049250313e-16);
}

TEST(Units, AngstromConversionsMatchHC) {
  // E[keV] * lambda[A] == hc for any wavelength.
  for (const double lambda_A : {1.0, 5.0, 12.39841984, 40.0}) {
    const KeV e = angstrom_to_kev(lambda_A);
    EXPECT_NEAR(e.value() * lambda_A, kHCKeVPerAngstrom, 1e-12);
    EXPECT_NEAR(kev_to_angstrom(e), lambda_A, 1e-12 * lambda_A);
  }
}

// ------------------------------------------------- zero-overhead guarantee

TEST(Units, QuantityIsExactlyOneDouble) {
  static_assert(sizeof(KeV) == sizeof(double));
  static_assert(alignof(KeV) == alignof(double));
  static_assert(std::is_trivially_copyable_v<KeV>);
  static_assert(std::is_standard_layout_v<KeV>);
  static_assert(sizeof(EmissivityPhotCm3PerS) == sizeof(double));
  // constexpr all the way down: usable as compile-time constants.
  constexpr KeV e = KeV{2.0} + KeV{1.0};
  static_assert(e.value() == 3.0);  // hlint:allow(fp-equal) — constexpr exact
  SUCCEED();
}

// ------------------------------------------------------ fp-compare policy

TEST(FpCompare, TolerantEquality) {
  EXPECT_TRUE(hspec::util::fp_equal(1.0, 1.0));
  EXPECT_TRUE(hspec::util::fp_equal(1.0, 1.0 + 1e-13));
  EXPECT_FALSE(hspec::util::fp_equal(1.0, 1.0 + 1e-9));
  // Relative tolerance scales with magnitude.
  EXPECT_TRUE(hspec::util::fp_equal(1e12, 1e12 + 0.1));
  // Absolute tolerance catches the near-zero case relative cannot.
  EXPECT_FALSE(hspec::util::fp_equal(0.0, 1e-300));
  EXPECT_TRUE(hspec::util::fp_equal(0.0, 1e-300, 1e-12, 1e-200));
}

TEST(FpCompare, ExactSentinelComparison) {
  EXPECT_TRUE(hspec::util::fp_exact_equal(0.0, 0.0));
  EXPECT_TRUE(hspec::util::fp_exact_equal(0.0, -0.0));  // IEEE: equal
  EXPECT_FALSE(hspec::util::fp_exact_equal(1.0, 1.0 + 1e-15));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(hspec::util::fp_exact_equal(nan, nan));
}

}  // namespace
