// Chaos soak for the recovery layer: randomized FaultPlan seeds sweeping
// fault rates from 0 to 20% over the Fig. 3 style workload, in both
// execution modes, with an occasional mid-run device death. Every run must
// stay bit-identical to the fault-free reference and keep the exactly-once
// ledger balanced.
//
// Labeled `soak` (not tier-1). The default depth is a quick smoke pass;
// CI's fault-soak job sets HSPEC_SOAK=full for the long sweep under
// ThreadSanitizer.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <vector>

#include "apec/calculator.h"
#include "core/hybrid.h"
#include "util/fault.h"

namespace {

using namespace hspec;
using namespace hspec::core;
using util::FaultPlan;
using util::FaultPlanConfig;

bool full_soak() {
  const char* env = std::getenv("HSPEC_SOAK");
  return env != nullptr && std::strcmp(env, "full") == 0;
}

class FaultSoakTest : public ::testing::Test {
 protected:
  FaultSoakTest()
      : db_(small_db()), grid_(apec::EnergyGrid::wavelength(5.0, 40.0, 48)),
        calc_(db_, grid_, kernel_options()) {}

  static atomic::DatabaseConfig small_db() {
    atomic::DatabaseConfig cfg;
    cfg.max_z = 8;
    cfg.levels = {2, true};
    return cfg;
  }
  static apec::CalcOptions kernel_options() {
    apec::CalcOptions opt;
    opt.integration.adaptive = false;
    return opt;
  }

  // Fig. 3 shape: a sweep of temperatures at fixed density.
  static std::vector<apec::GridPoint> points(std::size_t n) {
    std::vector<apec::GridPoint> pts;
    for (std::size_t i = 0; i < n; ++i)
      pts.push_back({0.2 + 0.15 * static_cast<double>(i), 1.0, 0.0, i});
    return pts;
  }

  HybridResult run(ExecutionMode mode, util::FaultPlan* plan) {
    HybridConfig cfg;
    cfg.ranks = 4;
    cfg.devices = 2;
    cfg.mode = mode;
    // Queue-full fallbacks take QAGS and break bit-identity; keep the queue
    // deep enough that only fault verdicts ever reach the CPU.
    cfg.max_queue_length = 64;
    cfg.fault_plan = plan;
    HybridDriver driver(calc_, cfg);
    return driver.run(points(full_soak() ? 6 : 3));
  }

  const HybridResult& reference() {
    if (!ref_) ref_.emplace(run(ExecutionMode::synchronous, nullptr));
    return *ref_;
  }

  void check(const HybridResult& res, const char* what) {
    const HybridResult& ref = reference();
    ASSERT_EQ(ref.spectra.size(), res.spectra.size()) << what;
    for (std::size_t p = 0; p < ref.spectra.size(); ++p)
      for (std::size_t b = 0; b < ref.spectra[p].bin_count(); ++b)
        ASSERT_EQ(ref.spectra[p][b], res.spectra[p][b])
            << what << " point " << p << " bin " << b;
    EXPECT_EQ(res.faults.injected, res.faults.retried) << what;
    EXPECT_LE(res.faults.requeued, res.faults.retried) << what;
    EXPECT_LE(res.faults.retried,
              res.faults.requeued + res.faults.cpu_fallbacks)
        << what;
    EXPECT_EQ(res.faults.gpu_completed + res.faults.cpu_completed,
              static_cast<std::int64_t>(res.tasks_total))
        << what;
    // Scheduling-latency histogram accounting (DESIGN.md §15): exactly one
    // clocked decision per task, regardless of faults or execution mode —
    // fault-path re-allocations bypass the clock on purpose.
    EXPECT_EQ(res.sched.decisions, static_cast<std::int64_t>(res.tasks_total))
        << what;
    EXPECT_GE(res.sched.latency_ns_total, 0) << what;
    EXPECT_GE(res.sched.mean_ns(), 0.0) << what;
  }

  atomic::AtomicDatabase db_;
  apec::EnergyGrid grid_;
  apec::SpectrumCalculator calc_;

 private:
  std::optional<HybridResult> ref_;
};

TEST_F(FaultSoakTest, RandomizedSeedsAndRatesStayExact) {
  const std::vector<std::uint64_t> seeds =
      full_soak() ? std::vector<std::uint64_t>{0x5eed1, 0x5eed2, 0x5eed3,
                                               0x5eed4}
                  : std::vector<std::uint64_t>{0x5eed1};
  const double rates[] = {0.0, 0.05, 0.1, 0.2};
  for (std::uint64_t seed : seeds) {
    for (double rate : rates) {
      FaultPlanConfig cfg;
      cfg.seed = seed;
      cfg.transfer_fault_rate = rate;
      cfg.kernel_fault_rate = rate;
      cfg.kernel_timeout_rate = rate;
      cfg.stream_stall_rate = rate;
      cfg.alloc_fault_rate = rate;
      FaultPlan plan(cfg);
      for (ExecutionMode mode :
           {ExecutionMode::synchronous, ExecutionMode::pipelined}) {
        char what[96];
        std::snprintf(what, sizeof(what), "seed=%llx rate=%.2f mode=%d",
                      static_cast<unsigned long long>(seed), rate,
                      static_cast<int>(mode));
        check(run(mode, &plan), what);
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST_F(FaultSoakTest, DeviceDeathUnderBackgroundFaults) {
  const std::vector<std::uint64_t> seeds =
      full_soak() ? std::vector<std::uint64_t>{0xdead1, 0xdead2}
                  : std::vector<std::uint64_t>{0xdead1};
  for (std::uint64_t seed : seeds) {
    FaultPlanConfig cfg;
    cfg.seed = seed;
    cfg.transfer_fault_rate = 0.1;
    cfg.kernel_fault_rate = 0.1;
    cfg.dead_device = static_cast<int>(seed % 2);
    cfg.dies_after_ops = 30;
    for (ExecutionMode mode :
         {ExecutionMode::synchronous, ExecutionMode::pipelined}) {
      // Death is permanent within a plan; give each mode a fresh plan so
      // both exercise the mid-run transition.
      FaultPlan plan(cfg);
      char what[96];
      std::snprintf(what, sizeof(what), "death seed=%llx mode=%d",
                    static_cast<unsigned long long>(seed),
                    static_cast<int>(mode));
      const HybridResult res = run(mode, &plan);
      check(res, what);
      if (HasFatalFailure()) return;
      EXPECT_EQ(res.faults.device_deaths, 1) << what;
      EXPECT_EQ(res.device_health[static_cast<std::size_t>(cfg.dead_device)],
                DeviceHealth::quarantined)
          << what;
    }
  }
}

}  // namespace
